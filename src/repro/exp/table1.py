"""Table 1: anomalous access pairs before/after repair, per level.

For each benchmark the driver reports the columns of the paper's Table 1:
transaction count, table counts before and after refactoring, anomaly
counts under EC for the original (EC) and refactored (AT) programs,
anomaly counts under causal consistency (CC) and repeatable read (RR)
for the original program, and the total analysis+repair time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis import AnomalyOracle, CC, EC, RR
from repro.corpus import ALL_BENCHMARKS, Benchmark
from repro.repair import repair
from repro.repair.engine import RepairReport


@dataclass
class Table1Row:
    """One benchmark's measured row, paired with the paper's numbers."""

    name: str
    txns: int
    tables_before: int
    tables_after: int
    ec: int
    at: int
    cc: int
    rr: int
    time_s: float
    report: RepairReport
    paper_ec: int
    paper_at: int

    def columns(self) -> List[str]:
        return [
            self.name,
            str(self.txns),
            f"{self.tables_before}, {self.tables_after}",
            str(self.ec),
            str(self.at),
            str(self.cc),
            str(self.rr),
            f"{self.time_s:.1f}",
        ]


def run_table1_row(benchmark: Benchmark) -> Table1Row:
    """Analyse and repair one benchmark."""
    start = time.perf_counter()
    program = benchmark.program()
    report = repair(program)
    cc_pairs = AnomalyOracle(CC).analyze(program).pairs
    rr_pairs = AnomalyOracle(RR).analyze(program).pairs
    elapsed = time.perf_counter() - start
    return Table1Row(
        name=benchmark.name,
        txns=len(program.transactions),
        tables_before=len(program.schemas),
        tables_after=len(report.repaired_program.schemas),
        ec=len(report.initial_pairs),
        at=len(report.residual_pairs),
        cc=len(cc_pairs),
        rr=len(rr_pairs),
        time_s=elapsed,
        report=report,
        paper_ec=benchmark.paper.ec,
        paper_at=benchmark.paper.at,
    )


def run_table1(benchmarks: Optional[Sequence[Benchmark]] = None) -> List[Table1Row]:
    """The full Table 1 sweep."""
    return [run_table1_row(b) for b in (benchmarks or ALL_BENCHMARKS)]
