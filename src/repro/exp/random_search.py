"""Appendix A.3 / Figure 16: random refactoring vs oracle-guided repair.

The baseline removes the anomaly-guided search: each round applies a
batch of *randomly chosen* refactorings (random redirects and random
logger translations over randomly chosen tables/fields) and re-counts
anomalies.  The paper's finding -- random search almost never reduces the
anomaly count, and never approaches the oracle-guided result -- falls out
of how narrow the applicability windows of the rules are.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis import detect_anomalies
from repro.errors import RefactoringError
from repro.lang import ast
from repro.refactor.logger import apply_logger, build_logger
from repro.refactor.redirect import apply_redirect, build_redirect
from repro.repair import repair


@dataclass
class RandomSearchResult:
    benchmark: str
    atropos_count: int
    initial_count: int
    round_counts: List[int] = field(default_factory=list)

    @property
    def best_random(self) -> int:
        return min(self.round_counts) if self.round_counts else self.initial_count


def _random_refactoring(
    program: ast.Program, rng: random.Random
) -> Optional[ast.Program]:
    """Try one random rule application; None if the draw is inapplicable."""
    tables = list(program.schema_names)
    if not tables:
        return None
    if rng.random() < 0.5:
        src = rng.choice(tables)
        dst = rng.choice(tables)
        if src == dst:
            return None
        schema = program.schema(src)
        if not schema.non_key_fields:
            return None
        fields = [rng.choice(schema.non_key_fields)]
        rewrite = build_redirect(program, src, dst, fields)
        if rewrite is None:
            return None
        try:
            new_program, _ = apply_redirect(program, rewrite)
            return new_program
        except RefactoringError:
            return None
    src = rng.choice(tables)
    schema = program.schema(src)
    if not schema.non_key_fields:
        return None
    rewrite = build_logger(program, src, rng.choice(schema.non_key_fields))
    try:
        new_program, _ = apply_logger(program, rewrite)
        return new_program
    except RefactoringError:
        return None


def run_random_search(
    benchmark,
    rounds: int = 20,
    refactorings_per_round: int = 10,
    seed: int = 42,
) -> RandomSearchResult:
    """Figure 16 for one benchmark: ``rounds`` batches of random
    refactorings, each scored by the EC anomaly count."""
    rng = random.Random(seed)
    program = benchmark.program()
    initial = len(detect_anomalies(program))
    atropos = len(repair(program).residual_pairs)
    counts: List[int] = []
    for _ in range(rounds):
        candidate = program
        for _ in range(refactorings_per_round):
            result = _random_refactoring(candidate, rng)
            if result is not None:
                candidate = result
        counts.append(len(detect_anomalies(candidate)))
    return RandomSearchResult(
        benchmark=benchmark.name,
        atropos_count=atropos,
        initial_count=initial,
        round_counts=counts,
    )
