"""Appendix A.3 / Figure 16: random refactoring vs oracle-guided repair.

The baseline removes the anomaly-guided search: each round applies a
batch of *randomly chosen* refactorings (random redirects and random
logger translations over randomly chosen tables/fields) and re-counts
anomalies.  The paper's finding -- random search almost never reduces the
anomaly count, and never approaches the oracle-guided result -- falls out
of how narrow the applicability windows of the rules are.

Since the plan IR landed, the random rule applications live in
:class:`repro.repair.search.RandomSearch` (the ``"random"`` plan-search
strategy); this module is a thin driver that runs it next to the
oracle-guided ``repair`` and shapes the comparison for Figure 16.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.repair import RandomSearch, RewritePlan


@dataclass
class RandomSearchResult:
    benchmark: str
    atropos_count: int
    initial_count: int
    round_counts: List[int] = field(default_factory=list)
    # The best random round's plan (empty when no round improved on the
    # original program), replayable like any repair plan.
    best_plan: RewritePlan = RewritePlan()

    @property
    def best_random(self) -> int:
        return min(self.round_counts) if self.round_counts else self.initial_count


def run_random_search(
    benchmark,
    rounds: int = 20,
    refactorings_per_round: int = 10,
    seed: int = 42,
) -> RandomSearchResult:
    """Figure 16 for one benchmark: ``rounds`` batches of random
    refactorings, each scored by the EC anomaly count.  Both the
    oracle-guided baseline repair and the random search run through one
    :class:`repro.api.Workspace`."""
    from repro.api import Workspace

    program = benchmark.program()
    searcher = RandomSearch(
        rounds=rounds, steps_per_round=refactorings_per_round, seed=seed
    )
    with Workspace(strategy="serial") as ws:
        atropos = len(ws.repair_program(program).residual_pairs)
        report = ws.repair_program(program, search=searcher)
    return RandomSearchResult(
        benchmark=benchmark.name,
        atropos_count=atropos,
        initial_count=len(report.initial_pairs),
        round_counts=list(report.extras["round_counts"]),
        best_plan=report.plan,
    )
