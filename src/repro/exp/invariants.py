"""Appendix A.2: SmallBank application-level invariants.

Dynamic study: execute adversarial eventually-consistent interleavings of
SmallBank transactions on the interpreter, for the original and the
repaired program, and check the three invariants:

1. guarded balances never go negative (``SendPayment`` checks funds);
2. money is conserved by transfers (no lost updates);
3. a client reading both of a customer's balances observes a state some
   serial execution could produce (joint-view consistency).

The paper finds all three violable in the original program under EC and
only one still violable after repair; the repaired program's single-row
reads/writes structurally remove the joint-view fracture.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Sequence

from repro.corpus.smallbank import SMALLBANK
from repro.lang import ast
from repro.refactor.migrate import migrate_database
from repro.semantics.interp import TxnCall
from repro.semantics.scheduler import (
    count_db_commands,
    random_schedules,
    run_interleaved,
)
from repro.semantics.state import Database
from repro.semantics.views import RandomPartialView


@dataclass
class InvariantReport:
    """Violation flags per invariant, original vs repaired program."""

    original: Dict[str, bool]
    repaired: Dict[str, bool]

    def violated_count(self, which: str) -> int:
        flags = self.original if which == "original" else self.repaired
        return sum(flags.values())


def _total_balance(tables, program: ast.Program) -> int:
    total = 0
    for schema in program.schemas:
        for field in schema.fields:
            if field.endswith("_bal") or field.endswith("bal"):
                for rec in tables.get(schema.name, {}).values():
                    value = rec.get(field)
                    if isinstance(value, int):
                        total += value
    return total


def _explore(
    program: ast.Program,
    db: Database,
    calls: Sequence[TxnCall],
    samples: int,
    seed: int,
):
    """Yield (history, final tables, results) over random EC executions."""
    counts = [count_db_commands(program, call, db) for call in calls]
    rng = random.Random(seed)
    for i, schedule in enumerate(random_schedules(counts, rng, samples)):
        policy = RandomPartialView(random.Random(seed + i), p_visible=0.5)
        history = run_interleaved(program, db, calls, schedule, policy)
        yield history, history.state.materialize(), history.results


def _study_program(
    program: ast.Program, db: Database, samples: int, seed: int
) -> Dict[str, bool]:
    violations = {"nonnegative": False, "conservation": False, "joint-view": False}

    # Invariant 1 + 2: two guarded payments racing from one account.
    calls = [
        TxnCall("SendPayment", (0, 1, 80)),
        TxnCall("SendPayment", (0, 2, 80)),
    ]
    initial_total = _total_balance(_materialize(db), program)
    for _, tables, _ in _explore(program, db, calls, samples, seed):
        if _min_balance(tables) < 0:
            violations["nonnegative"] = True
        if _total_balance(tables, program) != initial_total:
            violations["conservation"] = True

    # Invariant 3: a Balance read racing an Amalgamate of the same
    # customer.  Serially reachable results: the untouched total or 0.
    calls = [TxnCall("Balance", (0,)), TxnCall("Amalgamate", (0, 1))]
    serial_ok = {200, 0}
    for _, _, results in _explore(program, db, calls, samples, seed + 1):
        observed = results.get(0)
        if observed is not None and observed not in serial_ok:
            violations["joint-view"] = True
    return violations


def _materialize(db: Database):
    return {t: {k: dict(v) for k, v in recs.items()} for t, recs in db.tables.items()}


def _min_balance(tables) -> int:
    lows = [0]
    for table, recs in tables.items():
        for rec in recs.values():
            for field, value in rec.items():
                if field.endswith("bal") and isinstance(value, int):
                    lows.append(value)
    return min(lows)


def run_invariant_study(samples: int = 40, seed: int = 11) -> InvariantReport:
    """Run the A.2 study on the original and repaired SmallBank (repair
    step via :class:`repro.api.Workspace`)."""
    from repro.api import Workspace

    program = SMALLBANK.program()
    db = SMALLBANK.database(scale=4)
    with Workspace(strategy="serial") as ws:
        report = ws.repair_program(program)
    at_program = report.repaired_program
    at_db = migrate_database(db, at_program, report.rewrites)
    return InvariantReport(
        original=_study_program(program, db, samples, seed),
        repaired=_study_program(at_program, at_db, samples, seed),
    )
