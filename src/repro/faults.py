"""Seeded fault injection: named failpoints with a pluggable plan.

The service's recovery machinery (crash respawn, orphan re-enqueue,
retry-with-backoff, cache quarantine) is only trustworthy if it is
exercised under *combinatorial* failures, not the one hand-scripted
SIGKILL a unit test can stage.  This module provides the injection
half of that story:

- **failpoints** are named call sites sprinkled through the hot paths
  (``failpoint("jobstore.claim")``, ``failpoint_bytes("cache.read",
  data)``).  With no plan installed they are a single ``is None``
  check -- zero overhead in production;
- a :class:`FaultPlan` is a *seeded* set of :class:`FaultRule`\\ s
  (site -> trigger -> action).  Triggers are ``nth``-hit (exact,
  deterministic) or probability ``p`` (drawn from the plan's private
  ``random.Random(seed)``, so a seed fully reproduces a schedule);
- actions: ``raise`` (a :class:`FaultInjected`), ``busy`` (a sqlite
  "database is locked" error, to exercise retry-with-backoff),
  ``delay`` (sleep), ``corrupt`` (flip bytes at a ``failpoint_bytes``
  site), and ``crash`` (``os._exit`` -- worker processes only, see
  :func:`activate`);
- every fired fault is appended to the plan's **schedule** (and, when
  ``log_path`` is set, to an NDJSON file survived by crashes) so CI
  can upload the exact failure history of a red run.

Plans travel to spawned worker processes through the ``REPRO_FAULTS``
environment variable (a JSON spec, see :meth:`FaultPlan.to_spec`);
:func:`install_from_env` is called by ``service.workers.worker_main``.
Rules may carry a ``gate`` file path: the rule fires only while the
file does not exist and creates it when it fires, which is how a
"crash exactly once across process generations" schedule is written.
"""

from __future__ import annotations

import json
import os
import random
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

ACTIONS = ("raise", "busy", "delay", "corrupt", "crash")

#: Environment variable carrying a plan spec into worker processes.
ENV_VAR = "REPRO_FAULTS"


class FaultInjected(Exception):
    """Raised by a ``raise``-action failpoint.

    Deliberately *not* a :class:`~repro.errors.ReproError`: injected
    faults model infrastructure failures, and the layers above must
    handle them the way they handle real ones (retry, re-enqueue,
    quarantine) rather than reporting them as user errors.
    """

    def __init__(self, site: str):
        super().__init__(f"fault injected at {site}")
        self.site = site


@dataclass
class FaultRule:
    """One (site, trigger, action) arm of a plan.

    ``nth`` fires on exactly the nth hit of the site (1-based,
    deterministic); ``p`` fires each hit with probability ``p`` from
    the plan's seeded RNG.  ``times`` caps total firings (0 = no cap);
    ``gate`` names a file that suppresses the rule once it exists and
    is created when the rule fires (cross-process "only once").
    """

    site: str
    action: str
    nth: int = 0
    p: float = 0.0
    times: int = 1
    delay_s: float = 0.05
    gate: Optional[str] = None
    fired: int = field(default=0, compare=False)

    def to_json(self) -> dict:
        doc = {"site": self.site, "action": self.action}
        if self.nth:
            doc["nth"] = self.nth
        if self.p:
            doc["p"] = self.p
        if self.times != 1:
            doc["times"] = self.times
        if self.delay_s != 0.05:
            doc["delay_s"] = self.delay_s
        if self.gate:
            doc["gate"] = self.gate
        return doc

    @classmethod
    def from_json(cls, doc: dict) -> "FaultRule":
        if doc.get("action") not in ACTIONS:
            raise ValueError(f"unknown fault action: {doc.get('action')!r}")
        return cls(
            site=doc["site"],
            action=doc["action"],
            nth=int(doc.get("nth", 0)),
            p=float(doc.get("p", 0.0)),
            times=int(doc.get("times", 1)),
            delay_s=float(doc.get("delay_s", 0.05)),
            gate=doc.get("gate"),
        )


class FaultPlan:
    """A seeded, reproducible schedule of failures.

    Thread-safe: hit counters and the RNG are guarded by one lock (the
    service's runner threads and event streams share the process-wide
    plan).
    """

    def __init__(
        self,
        seed: int,
        rules: List[FaultRule],
        log_path: Optional[str] = None,
    ):
        self.seed = seed
        self.rules = rules
        self.log_path = log_path
        self.hits: Dict[str, int] = {}
        self.schedule: List[dict] = []
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._allow_crash = False

    # -- spec round-trip ---------------------------------------------------

    def to_spec(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "rules": [rule.to_json() for rule in self.rules],
                **({"log_path": self.log_path} if self.log_path else {}),
            },
            sort_keys=True,
        )

    @classmethod
    def from_spec(cls, text: str) -> "FaultPlan":
        doc = json.loads(text)
        return cls(
            seed=int(doc.get("seed", 0)),
            rules=[FaultRule.from_json(r) for r in doc.get("rules", [])],
            log_path=doc.get("log_path"),
        )

    # -- firing ------------------------------------------------------------

    def _pick(self, site: str) -> Optional[FaultRule]:
        """The rule (if any) that fires on this hit of ``site``."""
        self.hits[site] = self.hits.get(site, 0) + 1
        count = self.hits[site]
        for rule in self.rules:
            if rule.site != site:
                continue
            if rule.times and rule.fired >= rule.times:
                continue
            if rule.gate and os.path.exists(rule.gate):
                continue
            triggered = (rule.nth and count == rule.nth) or (
                rule.p and self._rng.random() < rule.p
            )
            if not triggered:
                continue
            rule.fired += 1
            self._record(site, rule)
            return rule
        return None

    def _record(self, site: str, rule: FaultRule) -> None:
        entry = {
            "site": site,
            "action": rule.action,
            "hit": self.hits[site],
            "seed": self.seed,
            "pid": os.getpid(),
        }
        self.schedule.append(entry)
        if rule.gate:
            # Create the gate *before* acting so even a crash action
            # leaves the "already fired" marker behind.
            try:
                with open(rule.gate, "x"):
                    pass
            except FileExistsError:
                pass
        if self.log_path:
            try:
                with open(self.log_path, "a") as fh:
                    fh.write(json.dumps(entry, sort_keys=True) + "\n")
                    fh.flush()
            except OSError:
                pass

    def _act(self, rule: FaultRule, site: str) -> None:
        action = rule.action
        if action == "crash" and not self._allow_crash:
            # In-process plans (inline runner, tests) must not take the
            # host down; degrade to a raise, which exercises the same
            # release-and-retry path.
            action = "raise"
        if action == "raise":
            raise FaultInjected(site)
        if action == "busy":
            raise sqlite3.OperationalError("database is locked (injected)")
        if action == "delay":
            time.sleep(rule.delay_s)
            return
        if action == "crash":
            os._exit(13)

    def hit(self, site: str) -> None:
        with self._lock:
            rule = self._pick(site)
        if rule is not None:
            self._act(rule, site)

    def hit_bytes(self, site: str, data: bytes) -> bytes:
        with self._lock:
            rule = self._pick(site)
        if rule is None:
            return data
        if rule.action == "corrupt":
            if not data:
                return b"\xff"
            with self._lock:
                index = self._rng.randrange(len(data))
            corrupted = bytearray(data)
            corrupted[index] ^= 0xFF
            return bytes(corrupted)
        self._act(rule, site)
        return data


#: The process-wide active plan.  ``None`` means every failpoint is a
#: single attribute load + comparison -- the zero-overhead contract.
_PLAN: Optional[FaultPlan] = None


def failpoint(site: str) -> None:
    """Declare a named failure site.  No-op unless a plan is active."""
    if _PLAN is None:
        return
    _PLAN.hit(site)


def failpoint_bytes(site: str, data: bytes) -> bytes:
    """A failure site through which payload bytes flow (``corrupt``
    rules rewrite them).  Identity unless a plan is active."""
    if _PLAN is None:
        return data
    return _PLAN.hit_bytes(site, data)


def active_plan() -> Optional[FaultPlan]:
    return _PLAN


def activate(plan: Optional[FaultPlan], allow_crash: bool = False) -> None:
    """Install ``plan`` process-wide (``None`` deactivates).

    ``allow_crash`` unlocks the ``crash`` action; only worker processes
    (whose death the pool monitor is built to survive) should pass
    ``True`` -- :func:`install_from_env` does.
    """
    global _PLAN
    if plan is not None:
        plan._allow_crash = allow_crash
    _PLAN = plan


def deactivate() -> None:
    activate(None)


def install_from_env(allow_crash: bool = True) -> Optional[FaultPlan]:
    """Activate the plan in ``$REPRO_FAULTS``, if any (worker boot)."""
    spec = os.environ.get(ENV_VAR)
    if not spec:
        return None
    plan = FaultPlan.from_spec(spec)
    activate(plan, allow_crash=allow_crash)
    return plan
