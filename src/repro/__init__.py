"""repro: a reproduction of "Repairing Serializability Bugs in Distributed
Database Programs via Automated Schema Refactoring" (Atropos, PLDI 2021).

Public API tour::

    from repro import parse_program, detect_anomalies, repair

    program = parse_program(DSL_SOURCE)
    pairs = detect_anomalies(program)          # the oracle O(P)
    report = repair(program)                   # the full Atropos pipeline
    print(report.summary())
    fixed = report.repaired_program            # AT program
    strong = report.serializable_variant()     # AT-SC program

Both shortcuts are thin wrappers over :mod:`repro.api` -- the one
versioned front door.  Long-lived callers should hold a
:class:`repro.api.Workspace` directly (shared warm solver sessions,
persistent cache, progress callbacks), and network callers get the same
workspace over HTTP via :mod:`repro.service`::

    from repro.api import Workspace, RepairRequest

    with Workspace(strategy="auto", cache_dir=".cache") as ws:
        result = ws.repair(RepairRequest(benchmark="Courseware"))

Subsystems (see DESIGN.md for the full inventory):

- :mod:`repro.lang` -- the database-program DSL (Figure 5);
- :mod:`repro.semantics` -- weakly isolated operational semantics (Fig 6);
- :mod:`repro.smt` -- CDCL SAT solver + formula layer (the Z3 substitute);
- :mod:`repro.analysis` -- the static anomaly oracle;
- :mod:`repro.refactor` -- value correspondences, redirect/logger rules;
- :mod:`repro.repair` -- the repair algorithm (Figure 10);
- :mod:`repro.api` -- the typed, versioned façade (Workspace);
- :mod:`repro.service` -- the JSON-over-HTTP server on top of it;
- :mod:`repro.corpus` -- the nine Table-1 benchmarks;
- :mod:`repro.store` -- geo-replicated store simulator (Figures 12-15);
- :mod:`repro.exp` -- experiment drivers for every table and figure.
"""

from repro.analysis import AnomalyOracle, EC, CC, RR, SC
from repro.errors import ReproError
from repro.lang import parse_program, print_program

# Load the repair subpackage *before* the `repair` function below shadows
# it as a package attribute: a later `import repro.repair` is a
# sys.modules hit and leaves the function binding alone, whereas a lazy
# first load would clobber it with the module object.
import repro.repair as _repair_pkg  # noqa: E402,F401


def _detect_version() -> str:
    """Single-source the package version from ``pyproject.toml``.

    Running from a source tree (``PYTHONPATH=src``, or an editable
    install) the adjacent ``pyproject.toml`` is authoritative -- it wins
    over any distribution metadata, so a stale wheel elsewhere in the
    environment cannot misreport the checkout's version.  Installed
    without a source tree, the distribution metadata (written by the
    build backend from the same ``pyproject.toml``) is the value.
    Either way the number lives in exactly one place and ``/v1/health``
    reports it.
    """
    import os
    import re

    pyproject = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
        "pyproject.toml",
    )
    try:
        with open(pyproject, encoding="utf-8") as fh:
            text = fh.read()
        if re.search(r'^name\s*=\s*"repro"', text, re.M):
            match = re.search(r'^version\s*=\s*"([^"]+)"', text, re.M)
            if match:
                return match.group(1)
    except OSError:
        pass
    try:
        from importlib import metadata

        return metadata.version("repro")
    except Exception:  # pragma: no cover - no metadata, no source tree
        return "0.0.0+unknown"


__version__ = _detect_version()


def detect_anomalies(program, level=EC, use_prefilter=True):
    """Convenience wrapper over :mod:`repro.api` returning just the
    anomalous pairs (the seed ``"serial"`` reference configuration)."""
    from repro.api import Workspace

    with Workspace(strategy="serial", use_prefilter=use_prefilter) as ws:
        return ws.analyze_program(program, level=level).pairs


def repair(
    program,
    level=EC,
    use_prefilter=True,
    strategy="serial",
    cache=None,
    search="greedy",
    max_workers=None,
    progress=None,
    **search_options,
):
    """Run the full repair pipeline on ``program`` (a thin wrapper over
    :meth:`repro.api.Workspace.repair_program`).

    A strategy given by name is owned by this call and torn down (worker
    pools included) before returning; a strategy *instance* belongs to
    the caller and is left running for reuse.  ``max_workers`` sizes the
    process-pool strategies (``"parallel"``, ``"parallel-incremental"``,
    ``"auto"``); ``cache`` may be a
    :class:`~repro.analysis.pipeline.PersistentQueryCache` to warm-start
    the oracle from an earlier run's outcomes.
    """
    from repro.api import Workspace

    with Workspace(
        strategy=strategy,
        cache=cache,
        max_workers=max_workers,
        use_prefilter=use_prefilter,
    ) as ws:
        return ws.repair_program(
            program,
            level=level,
            search=search,
            on_progress=progress,
            **search_options,
        )


__all__ = [
    "AnomalyOracle",
    "detect_anomalies",
    "EC",
    "CC",
    "RR",
    "SC",
    "ReproError",
    "parse_program",
    "print_program",
    "repair",
    "__version__",
]
