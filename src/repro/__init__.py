"""repro: a reproduction of "Repairing Serializability Bugs in Distributed
Database Programs via Automated Schema Refactoring" (Atropos, PLDI 2021).

Public API tour::

    from repro import parse_program, detect_anomalies, repair

    program = parse_program(DSL_SOURCE)
    pairs = detect_anomalies(program)          # the oracle O(P)
    report = repair(program)                   # the full Atropos pipeline
    print(report.summary())
    fixed = report.repaired_program            # AT program
    strong = report.serializable_variant()     # AT-SC program

Subsystems (see DESIGN.md for the full inventory):

- :mod:`repro.lang` -- the database-program DSL (Figure 5);
- :mod:`repro.semantics` -- weakly isolated operational semantics (Fig 6);
- :mod:`repro.smt` -- CDCL SAT solver + formula layer (the Z3 substitute);
- :mod:`repro.analysis` -- the static anomaly oracle;
- :mod:`repro.refactor` -- value correspondences, redirect/logger rules;
- :mod:`repro.repair` -- the repair algorithm (Figure 10);
- :mod:`repro.corpus` -- the nine Table-1 benchmarks;
- :mod:`repro.store` -- geo-replicated store simulator (Figures 12-15);
- :mod:`repro.exp` -- experiment drivers for every table and figure.
"""

from repro.analysis import AnomalyOracle, detect_anomalies, EC, CC, RR, SC
from repro.errors import ReproError
from repro.lang import parse_program, print_program
from repro.repair import repair

__version__ = "1.0.0"

__all__ = [
    "AnomalyOracle",
    "detect_anomalies",
    "EC",
    "CC",
    "RR",
    "SC",
    "ReproError",
    "parse_program",
    "print_program",
    "repair",
    "__version__",
]
