"""Section 7.1 / Appendix A.2: SmallBank application invariants.

Dynamic check that the statically repaired program also fixes
application-level bugs: the original violates the conservation and
joint-view invariants under adversarial EC executions; the repaired one
violates strictly fewer (the paper reports 3 -> 1; our register-based
store model yields 2 -> 1, see EXPERIMENTS.md).
"""

import pytest

from repro.exp import run_invariant_study

_study = {}


def test_invariant_study(benchmark):
    report = benchmark.pedantic(
        run_invariant_study, kwargs={"samples": 40, "seed": 11},
        rounds=1, iterations=1,
    )
    _study["report"] = report
    assert report.original["conservation"]
    assert report.original["joint-view"]
    assert not report.repaired["joint-view"]
    assert report.violated_count("repaired") < report.violated_count("original")


def test_print_invariant_report():
    report = _study.get("report")
    if report is None:
        pytest.skip("study not collected")
    print()
    print("A.2 SmallBank invariants (violable under EC?)")
    for inv in ("nonnegative", "conservation", "joint-view"):
        print(
            f"  {inv:13s} original={report.original[inv]} "
            f"repaired={report.repaired[inv]}"
        )
