"""Compare a fresh service-load run against the committed baseline.

Usage::

    python benchmarks/check_service_regression.py \
        --fresh BENCH_fresh.json --baseline BENCH_service.json \
        [--tolerance 0.3] [--min-speedup 1.5]

Follows the same host-shape discipline as
``check_bench_regression.py``: correctness gates are unconditional,
timing gates only apply where timing is meaningful.

Unconditional gates (any host, any shape):

- the fresh run completed every job in every pass with zero errors;
- the worker-path differential is ``identical: true`` -- results served
  through worker processes matched direct library calls byte-for-byte;
- the required fields (``passes.single``, ``passes.multi``,
  ``multi_worker_speedup``, ``differential``) are present, so the bench
  cannot silently stop measuring the subsystem;
- when the fresh run carries a ``fairness`` record (and always under
  ``--require-fairness``): the trickling tenant completed at least
  ``--min-victim-ratio`` of its jobs under the flooding tenant's
  backlog, and no job was lost or duplicated.  Victim latency is
  reported, not gated -- the 3x-solo latency bound lives in the
  dedicated ``repro chaos --scenario tenant-isolation`` experiment.

Shape-conditional gates:

- **min speedup**: on a host with >= 2 CPUs the multi-worker pass must
  reach ``--min-speedup`` (default 1.5x) over the single-worker pass.
  On a one-core host N solver processes time-slice one core and the
  ratio measures scheduler overhead, not scaling, so it is reported
  but not gated;
- **throughput vs baseline**: single- and multi-pass throughputs are
  compared against the committed baseline only when the fresh host
  shape (``environment.cpu_count``, per-pass ``workers``, and the
  job/concurrency workload) matches the baseline's; a drop of more than
  ``--tolerance`` (default 30% -- wall-clock throughput is noisier than
  the oracle bench's internal ratios) fails.
"""

from __future__ import annotations

import argparse
import json
import sys

REQUIRED_FIELDS = ("passes", "multi_worker_speedup", "differential")


def load(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def pass_shape(data: dict, name: str):
    """(cpu_count, workers, jobs, concurrency) for one load pass."""
    record = data.get("passes", {}).get(name, {})
    return (
        data.get("environment", {}).get("cpu_count"),
        record.get("workers"),
        record.get("jobs"),
        record.get("concurrency"),
    )


def same_shape(fresh: dict, baseline: dict, name: str) -> bool:
    return pass_shape(fresh, name) == pass_shape(baseline, name)


def check_fairness(
    fresh: dict,
    min_victim_ratio: float,
    require_fairness: bool,
) -> list:
    """Gate the two-tenant fairness record (when present/required)."""
    failures = []
    fairness = fresh.get("fairness")
    if fairness is None:
        if require_fairness:
            failures.append(
                "fresh run has no fairness record but --require-fairness "
                "is set (two-tenant pass disabled or silently dropped)"
            )
        return failures
    ratio = fairness.get("victim_completion_ratio", 0.0)
    if ratio < min_victim_ratio:
        failures.append(
            f"victim tenant completed only {ratio:.0%} of its jobs under "
            f"the aggressor flood (floor {min_victim_ratio:.0%}): the "
            "scheduler is starving the trickling tenant"
        )
    if fairness.get("lost_or_duplicated"):
        failures.append(
            f"fairness pass lost or duplicated jobs: store holds "
            f"{fairness.get('jobs_in_store')} rows for "
            f"{fairness.get('jobs_expected')} submissions"
        )
    victim = fairness.get("victim", {})
    if victim.get("errors", 0) != 0:
        failures.append(
            f"victim tenant had {victim.get('errors')} errored job(s): "
            f"{victim.get('error_samples')}"
        )
    return failures


def check(
    fresh: dict,
    baseline: dict,
    tolerance: float,
    min_speedup: float,
) -> list:
    failures = []

    for field in REQUIRED_FIELDS:
        if field not in fresh:
            failures.append(f"fresh run is missing {field!r} (required field)")
    for name in ("single", "multi"):
        if name not in fresh.get("passes", {}):
            failures.append(f"fresh run is missing passes.{name} (required)")
    if failures:
        return failures  # nothing below is meaningful on a malformed run

    # Correctness gates, unconditional.
    differential = fresh.get("differential", {})
    if differential.get("identical") is not True:
        failures.append(
            "worker-path differential is not identical: "
            f"{differential.get('benchmarks')}"
        )
    for name, record in fresh["passes"].items():
        if record.get("errors", 1) != 0:
            failures.append(
                f"passes.{name} had {record.get('errors')} errored job(s): "
                f"{record.get('error_samples')}"
            )
        if record.get("completed") != record.get("jobs"):
            failures.append(
                f"passes.{name} completed {record.get('completed')}/"
                f"{record.get('jobs')} jobs"
            )

    # Scaling gate: only where there are cores to scale onto.
    cpu_count = fresh.get("environment", {}).get("cpu_count") or 1
    speedup = fresh.get("multi_worker_speedup", 0.0)
    if cpu_count >= 2:
        if speedup < min_speedup:
            failures.append(
                f"multi-worker speedup {speedup:.2f}x < {min_speedup:.2f}x "
                f"on a {cpu_count}-core host"
            )
    else:
        print(
            f"single-core host: multi-worker speedup {speedup:.2f}x "
            "reported but not gated (no cores to scale onto)"
        )

    # Baseline throughput comparison, same-shape hosts only.
    for name in ("single", "multi"):
        if not same_shape(fresh, baseline, name):
            print(
                f"passes.{name} host/workload shape differs "
                f"({pass_shape(baseline, name)} -> {pass_shape(fresh, name)}); "
                "throughput reported but not gated"
            )
            continue
        base_tp = baseline["passes"][name].get("throughput_jobs_per_s")
        fresh_tp = fresh["passes"][name].get("throughput_jobs_per_s")
        if base_tp is None or fresh_tp is None:
            continue
        floor = base_tp * (1.0 - tolerance)
        if fresh_tp < floor:
            failures.append(
                f"passes.{name} throughput regressed: {fresh_tp:.2f} < "
                f"{floor:.2f} jobs/s (baseline {base_tp:.2f} - "
                f"{tolerance:.0%})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", required=True, help="freshly measured JSON")
    parser.add_argument(
        "--baseline", required=True, help="committed baseline JSON"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.3,
        help="allowed fractional throughput drop vs baseline on "
        "same-shape hosts (default 0.3)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.5,
        help="required multi-vs-single-worker speedup on multi-core "
        "hosts (default 1.5)",
    )
    parser.add_argument(
        "--require-fairness",
        action="store_true",
        help="fail when the fresh run carries no two-tenant fairness "
        "record (instead of skipping those gates)",
    )
    parser.add_argument(
        "--min-victim-ratio",
        type=float,
        default=1.0,
        help="fraction of the trickling tenant's jobs that must "
        "complete under flood (default 1.0)",
    )
    args = parser.parse_args(argv)

    fresh = load(args.fresh)
    baseline = load(args.baseline)
    failures = check(fresh, baseline, args.tolerance, args.min_speedup)
    failures += check_fairness(
        fresh, args.min_victim_ratio, args.require_fairness
    )
    fairness = fresh.get("fairness")
    if fairness:
        print(
            f"fairness: victim {fairness.get('victim_completion_ratio', 0):.0%} "
            f"complete @ p99 {fairness.get('victim_p99_s')}s under "
            f"{fairness.get('aggressor_jobs')} aggressor jobs"
        )

    single = fresh.get("passes", {}).get("single", {})
    multi = fresh.get("passes", {}).get("multi", {})
    print(
        f"fresh: single {single.get('throughput_jobs_per_s')} jobs/s, "
        f"multi[{multi.get('workers')}w] "
        f"{multi.get('throughput_jobs_per_s')} jobs/s "
        f"({fresh.get('multi_worker_speedup')}x), differential "
        f"identical={fresh.get('differential', {}).get('identical')} | "
        f"baseline: single "
        f"{baseline.get('passes', {}).get('single', {}).get('throughput_jobs_per_s')}"
        f" jobs/s, speedup {baseline.get('multi_worker_speedup')}x"
    )
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("service regression gate: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
