"""Shared configuration for the benchmark harness.

Every file in this directory regenerates one of the paper's tables or
figures (see DESIGN.md's per-experiment index).  Benchmarks print the
regenerated rows/series so `pytest benchmarks/ --benchmark-only -s`
doubles as the reproduction report; EXPERIMENTS.md records a captured
run against the paper's numbers.
"""

import pytest

from repro.store import PerfConfig

# Scaled-down but shape-preserving simulation parameters: the paper runs
# 90 s per point on AWS; we run 4 simulated seconds per point.
BENCH_PERF_CONFIG = PerfConfig(duration_ms=4_000.0, warmup_ms=500.0)
CLIENT_COUNTS = (1, 8, 32, 96, 192)


@pytest.fixture(scope="session")
def perf_config():
    return BENCH_PERF_CONFIG
