"""Figure 12: throughput/latency vs clients on the US cluster.

Three sub-figures -- SmallBank (a), SEATS (b), TPC-C (c) -- each with the
four configurations EC / AT-EC / SC / AT-SC.  The assertions pin the
qualitative claims of Section 7.2:

- SC costs dramatically more than EC (lower throughput, higher latency);
- AT-EC tracks EC (the refactoring itself is nearly free under EC);
- AT-SC lands between, beating SC on both axes.
"""

import pytest

from repro.corpus import SEATS, SMALLBANK, TPCC
from repro.exp import run_perf_sweep
from repro.exp.reporting import format_series
from repro.store import US_CLUSTER

from conftest import BENCH_PERF_CONFIG, CLIENT_COUNTS

BENCHES = {b.name: b for b in (SMALLBANK, SEATS, TPCC)}

_sweeps = {}


def _run(bench):
    return run_perf_sweep(
        bench,
        US_CLUSTER,
        client_counts=CLIENT_COUNTS,
        config=BENCH_PERF_CONFIG,
        scale=12,
    )


@pytest.mark.parametrize("name", list(BENCHES), ids=list(BENCHES))
def test_fig12_sweep(benchmark, name):
    sweep = benchmark.pedantic(_run, args=(BENCHES[name],), rounds=1, iterations=1)
    _sweeps[name] = sweep
    ec = sweep.series["EC"].points[-1]
    sc = sweep.series["SC"].points[-1]
    at_ec = sweep.series["AT-EC"].points[-1]
    at_sc = sweep.series["AT-SC"].points[-1]
    assert ec.throughput > sc.throughput
    assert ec.avg_latency_ms < sc.avg_latency_ms
    assert at_ec.throughput >= ec.throughput * 0.9  # "negligible overhead"
    assert at_sc.throughput > sc.throughput          # the headline gain
    assert at_sc.avg_latency_ms < sc.avg_latency_ms


def test_print_fig12_report():
    if not _sweeps:
        pytest.skip("sweeps not collected")
    print()
    gains, cuts = [], []
    for name, sweep in _sweeps.items():
        print(f"Figure 12 ({name}, US cluster) -- txn/s then ms by clients")
        for mode in ("EC", "AT-EC", "SC", "AT-SC"):
            series = sweep.series[mode]
            print(" ", format_series(f"{mode} thr", sweep.client_counts, series.throughputs()))
            print(" ", format_series(f"{mode} lat", sweep.client_counts, series.latencies()))
        gains.append(sweep.gain_at_peak())
        cuts.append(sweep.latency_reduction_at_peak())
        print(
            f"  AT-SC vs SC at peak: +{sweep.gain_at_peak():.0%} throughput, "
            f"-{sweep.latency_reduction_at_peak():.0%} latency"
        )
    print(
        f"average: +{sum(gains)/len(gains):.0%} throughput (paper +120%), "
        f"-{sum(cuts)/len(cuts):.0%} latency (paper -45%)"
    )
