"""Table 1: static anomaly detection + repair across the corpus.

Regenerates the paper's Table 1 columns (#Txns, #Tables, EC, AT, CC, RR,
Time) and benchmarks the analysis+repair pipeline per benchmark.
"""

import pytest

from repro.corpus import ALL_BENCHMARKS
from repro.exp import format_table, run_table1_row

IDS = [b.name for b in ALL_BENCHMARKS]

_rows = {}


@pytest.mark.parametrize("bench", ALL_BENCHMARKS, ids=IDS)
def test_table1_row(benchmark, bench):
    """Benchmark one full analyse+repair+re-analyse cycle."""
    row = benchmark(run_table1_row, bench)
    _rows[bench.name] = row
    # Shape assertions against the paper's row.
    assert row.at <= row.ec, "repair must not add anomalies"
    assert row.cc <= row.ec and row.rr <= row.ec
    if bench.paper.at == 0:
        assert row.at == 0, f"{bench.name}: paper repairs everything"


def test_print_table1_report():
    """Render the regenerated Table 1 (run last; uses collected rows)."""
    rows = [_rows[b.name] for b in ALL_BENCHMARKS if b.name in _rows]
    if not rows:
        pytest.skip("rows not collected (run the parametrised bench first)")
    print()
    print("Table 1 (measured | paper EC->AT in parentheses)")
    print(
        format_table(
            ["Benchmark", "#Txns", "#Tables", "EC", "AT", "CC", "RR", "Time(s)", "paper"],
            [
                row.columns() + [f"({row.paper_ec}->{row.paper_at})"]
                for row in rows
            ],
        )
    )
    total_ec = sum(r.ec for r in rows)
    total_at = sum(r.at for r in rows)
    print(
        f"overall repair ratio: {(total_ec - total_at) / total_ec:.0%} "
        "(paper: 74% average)"
    )
