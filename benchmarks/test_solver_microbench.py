"""Solver micro-benchmark: propagation and conflict-analysis throughput
on the arena clause store, differentially against the retained object
store.

Two workloads isolate the hot paths the oracle exercises:

- ``unit-sweep``: a satisfiable random 3-SAT instance solved under a
  long batch of single-literal assumption sets -- propagation-dominated,
  the shape of a warm incremental session sweeping levels;
- ``pigeonhole``: an unsatisfiable PHP(6,5) refutation --
  conflict-analysis- and learning-dominated.

Both backends must produce identical verdicts *and* identical search
statistics (decisions/propagations/conflicts): the arena is a storage
change, not a heuristic change, so any stat drift is a bug.  Timings are
best-of-three and recorded for the perf trajectory; the only timing
gate is a deliberately loose sanity bound (the arena must not be
catastrophically slower than the object path), so scheduler noise on a
shared CI host cannot flake the job.

``BENCH_SOLVER_MICRO_OUT`` names a JSON output path; without it the
numbers are only printed.
"""

import json
import os
import platform
import random
import time

from repro.smt.solver import Solver, lit, neg, stats_delta

_PROP_KEYS = ("props", "decisions", "conflicts")


def _random_3sat(s, num_vars=120, num_clauses=420, seed=7):
    rng = random.Random(seed)
    vs = [s.new_var() for _ in range(num_vars)]
    for _ in range(num_clauses):
        s.add_clause(
            [lit(rng.randrange(num_vars), rng.random() < 0.5) for _ in range(3)]
        )
    return vs


def _pigeonhole(s, pigeons=6, holes=5):
    v = [[s.new_var() for _ in range(holes)] for _ in range(pigeons)]
    for i in range(pigeons):
        s.add_clause([lit(v[i][j]) for j in range(holes)])
    for j in range(holes):
        for i1 in range(pigeons):
            for i2 in range(i1 + 1, pigeons):
                s.add_clause([neg(lit(v[i1][j])), neg(lit(v[i2][j]))])


def _unit_sweep(clause_db):
    s = Solver(clause_db=clause_db)
    vs = _random_3sat(s)
    assert s.solve().sat  # warm the learned DB like a session build
    batch = [[lit(v, pol)] for v in vs for pol in (True, False)]
    before = s.stats()
    start = time.perf_counter()
    results = s.solve_batch(batch)
    seconds = time.perf_counter() - start
    verdicts = [r.sat for r in results]
    return verdicts, stats_delta(s.stats(), before), seconds


def _refutation(clause_db):
    s = Solver(clause_db=clause_db)
    _pigeonhole(s)
    before = s.stats()
    start = time.perf_counter()
    result = s.solve()
    seconds = time.perf_counter() - start
    return [result.sat], stats_delta(s.stats(), before), seconds


def _best_of(runner, clause_db, repeats=3):
    verdicts, delta, seconds = None, None, float("inf")
    for _ in range(repeats):
        v, d, elapsed = runner(clause_db)
        if verdicts is None:
            verdicts, delta = v, d
        else:
            # Fresh solver + deterministic heuristics: every repetition
            # must retrace the identical search.
            assert v == verdicts and all(
                d[k] == delta[k] for k in _PROP_KEYS
            ), clause_db
        seconds = min(seconds, elapsed)
    return verdicts, delta, seconds


def test_solver_microbench(capsys):
    payload = {
        "benchmark": "solver-microbench",
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "workloads": {},
    }
    for name, runner in (("unit_sweep", _unit_sweep), ("pigeonhole", _refutation)):
        arena_v, arena_d, arena_s = _best_of(runner, "arena")
        obj_v, obj_d, obj_s = _best_of(runner, "objects")
        # Differential gate: storage backends may not change the search.
        assert arena_v == obj_v, name
        for key in _PROP_KEYS:
            assert arena_d[key] == obj_d[key], (name, key)
        # Loose sanity bound, not a perf gate (see module docstring).
        assert arena_s < obj_s * 2.5 + 0.05, name
        payload["workloads"][name] = {
            "solves": len(arena_v),
            "props": arena_d["props"],
            "conflicts": arena_d["conflicts"],
            "arena_seconds": round(arena_s, 4),
            "objects_seconds": round(obj_s, 4),
            "arena_props_per_second": round(arena_d["props"] / arena_s, 1),
            "objects_props_per_second": round(obj_d["props"] / obj_s, 1),
            "arena_speedup_vs_objects": round(obj_s / arena_s, 2),
        }

    out_path = os.environ.get("BENCH_SOLVER_MICRO_OUT")
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")

    with capsys.disabled():
        for name, w in payload["workloads"].items():
            print(
                f"\nsolver microbench [{name}]: "
                f"arena={w['arena_seconds']:.3f}s "
                f"objects={w['objects_seconds']:.3f}s "
                f"({w['arena_speedup_vs_objects']:.2f}x, "
                f"{w['arena_props_per_second']:.0f} props/s)"
            )
