"""Ablation benchmarks for the design choices called out in DESIGN.md.

1. **Static prefilter**: skipping SAT queries with no conflict candidates
   must not change results and should reduce query count/time.
2. **Distinct-argument aliasing**: the heuristic that same-instance
   commands keyed by different parameters address different records;
   turning it off gives the fully conservative (larger) anomaly set.
3. **CDCL machinery**: solver microbenchmarks (pigeonhole instances)
   showing clause learning carrying the encoder's workload.
"""


from repro.analysis import AnomalyOracle, EC
from repro.corpus import SMALLBANK, TPCC
from repro.smt.solver import Solver, lit, neg


class TestPrefilterAblation:
    def test_results_identical(self):
        program = TPCC.program()
        with_f = AnomalyOracle(EC, use_prefilter=True).analyze(program)
        without = AnomalyOracle(EC, use_prefilter=False).analyze(program)
        assert {p.key() for p in with_f.pairs} == {p.key() for p in without.pairs}
        assert without.sat_queries > with_f.sat_queries

    def test_bench_with_prefilter(self, benchmark):
        program = TPCC.program()
        benchmark(lambda: AnomalyOracle(EC, use_prefilter=True).analyze(program))

    def test_bench_without_prefilter(self, benchmark):
        program = TPCC.program()
        benchmark(lambda: AnomalyOracle(EC, use_prefilter=False).analyze(program))


class TestDistinctArgsAblation:
    def test_heuristic_never_adds_pairs(self):
        program = SMALLBANK.program()
        strict = AnomalyOracle(EC, distinct_args=True).analyze(program).pairs
        loose = AnomalyOracle(EC, distinct_args=False).analyze(program).pairs
        # On SmallBank the pairs survive via cross-instance witnesses, so
        # the heuristic changes the alias structure, not the pair count;
        # it must never add pairs.
        assert {p.key() for p in strict} <= {p.key() for p in loose}

    def test_bench_distinct_args(self, benchmark):
        program = SMALLBANK.program()
        benchmark(lambda: AnomalyOracle(EC, distinct_args=True).analyze(program))

    def test_bench_conservative(self, benchmark):
        program = SMALLBANK.program()
        benchmark(lambda: AnomalyOracle(EC, distinct_args=False).analyze(program))


def _pigeonhole(pigeons, holes):
    s = Solver()
    v = [[s.new_var() for _ in range(holes)] for _ in range(pigeons)]
    for i in range(pigeons):
        s.add_clause([lit(v[i][j]) for j in range(holes)])
    for j in range(holes):
        for i1 in range(pigeons):
            for i2 in range(i1 + 1, pigeons):
                s.add_clause([neg(lit(v[i1][j])), neg(lit(v[i2][j]))])
    return s


class TestSolverMicrobench:
    def test_bench_pigeonhole_unsat(self, benchmark):
        def run():
            assert not _pigeonhole(7, 6).solve().sat

        benchmark(run)

    def test_bench_pigeonhole_sat(self, benchmark):
        def run():
            assert _pigeonhole(6, 6).solve().sat

        benchmark(run)
