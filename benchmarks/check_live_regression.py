"""Compare a fresh live-repair bench run against the committed baseline.

Usage::

    python benchmarks/check_live_regression.py \
        --fresh BENCH_live_fresh.json --baseline BENCH_live.json \
        [--tolerance 0.2]

The validation side of ``BENCH_live.json`` is fully seeded and
single-threaded, so it is host-independent and gated **unconditionally**
for every benchmark present in both runs:

- every fresh row must pass outright (serial fidelity + anomaly-verdict
  agreement) -- a failing row is a live-enforcement bug, never noise;
- rule counts (``rules`` / ``identity_rules`` / ``unsupported``) must
  match the baseline exactly: plan compilation is deterministic, so a
  changed count on an unchanged benchmark means the compiler changed
  behaviour;
- the anomaly *verdict* per probe side (anomalous or not, i.e.
  ``anomalies.<side>.anomalies > 0``) must not flip against the
  baseline.  Raw counts may drift when a repair plan legitimately
  changes; a verdict flip means the live rules stopped (or started)
  protecting a benchmark and fails regardless of tolerance or host.

The throughput side depends on the simulator's host-calibrated service
times only through the committed baseline's provenance, so -- like the
pool-relative ratios in ``check_bench_regression.py`` -- the
``overhead_ratio`` ceiling is gated only when the fresh run's
``environment.cpu_count`` matches the baseline's: the fresh ratio may
not exceed the baseline's by more than ``tolerance`` (default 20%).
On a different host shape the ratios are reported but not gated.
"""

from __future__ import annotations

import argparse
import json
import sys

SIDES = ("original", "static", "target", "live")


def load(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def same_shape(fresh: dict, baseline: dict) -> bool:
    return fresh.get("environment", {}).get("cpu_count") == baseline.get(
        "environment", {}
    ).get("cpu_count")


def check(fresh: dict, baseline: dict, tolerance: float) -> list:
    failures = []

    rows = fresh.get("rows", [])
    if not rows:
        failures.append("fresh run records no benchmark rows")

    # Unconditional gates: every fresh row passes on its own terms.
    for row in rows:
        if not row["passed"]:
            failures.append(
                f"{row['name']}: live validation failed "
                f"(serial_match={row['serial_match']}, "
                f"verdict_match={row['verdict_match']})"
            )

    base_rows = {r["name"]: r for r in baseline.get("rows", [])}
    gate_ratio = same_shape(fresh, baseline)
    if not gate_ratio:
        print(
            "host shape differs "
            f"(cpu_count {baseline.get('environment', {}).get('cpu_count')} "
            f"-> {fresh.get('environment', {}).get('cpu_count')}); "
            "overhead ratios reported but not gated"
        )
    for row in rows:
        base = base_rows.get(row["name"])
        if base is None:
            continue
        for column in ("rules", "identity_rules", "unsupported"):
            # Required columns: a fresh row missing one is an emission
            # bug, so let the KeyError surface rather than skip the gate.
            if row[column] != base[column]:
                failures.append(
                    f"{row['name']}: {column} drifted "
                    f"{base[column]} -> {row[column]} (correctness gate)"
                )
        for side in SIDES:
            fresh_verdict = row["anomalies"][side]["anomalies"] > 0
            base_verdict = base["anomalies"][side]["anomalies"] > 0
            if fresh_verdict != base_verdict:
                failures.append(
                    f"{row['name']}: {side} anomaly verdict flipped "
                    f"{base_verdict} -> {fresh_verdict} (correctness gate)"
                )
        if gate_ratio:
            ceiling = base["overhead_ratio"] * (1.0 + tolerance)
            if row["overhead_ratio"] > ceiling:
                failures.append(
                    f"{row['name']}: overhead_ratio regressed: "
                    f"{row['overhead_ratio']:.4f} > {ceiling:.4f} "
                    f"(baseline {base['overhead_ratio']:.4f} "
                    f"+ {tolerance:.0%})"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", required=True, help="freshly measured JSON")
    parser.add_argument(
        "--baseline", required=True, help="committed baseline JSON"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional overhead_ratio increase on same-shape "
        "hosts before failing (default 0.2)",
    )
    args = parser.parse_args(argv)

    fresh = load(args.fresh)
    baseline = load(args.baseline)
    failures = check(fresh, baseline, args.tolerance)

    worst = max(
        fresh.get("rows", []),
        key=lambda r: r.get("overhead_ratio", 0.0),
        default=None,
    )
    if worst is not None:
        print(
            f"fresh: {len(fresh['rows'])} row(s), worst overhead "
            f"{worst['name']} {worst['overhead_ratio']:.3f}x | "
            f"baseline rows: {len(baseline.get('rows', []))}"
        )
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("live regression gate: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
