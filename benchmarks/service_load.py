"""Stdlib load driver for the repro HTTP service.

Submits jobs over ``POST /v1/jobs``, polls each to completion, and
reports throughput and latency percentiles.  Three design points keep
the numbers honest:

- **unique programs**: every job carries a *distinct* synthetic DSL
  program (:func:`synthetic_source` -- index-suffixed schema, field,
  and transaction names), so nothing short-circuits through the memo
  cache and shard keys spread across the worker pool.  Replaying one
  corpus benchmark N times would measure HTTP overhead, not service
  throughput;
- **well-behaved backpressure**: a 429/503 answer is not an error --
  the driver sleeps exactly the advertised ``Retry-After`` and
  resubmits, counting the retry.  Anything else non-2xx is an error;
- **closed loop per client**: ``concurrency`` threads each run
  submit-poll-repeat, the standard closed-loop load model, so offered
  load tracks service capacity instead of overrunning the queue.

Usable standalone against any running server::

    python benchmarks/service_load.py --url http://127.0.0.1:8472 \
        --jobs 32 --concurrency 8

or programmatically (``benchmarks/test_service_scaling.py`` does) via
:func:`run_load`, which returns the metrics dict that becomes a pass
record in ``BENCH_service.json``.
"""

from __future__ import annotations

import argparse
import json
import threading
import time
import urllib.error
import urllib.request
from typing import List, Optional

#: Poll interval while waiting for a submitted job to finish.
POLL_INTERVAL = 0.05


def synthetic_source(index: int, txns: int = 4) -> str:
    """A unique-by-construction DSL program for job ``index``.

    Shaped like a small ledger workload (read two fields, write both
    back) so analysis and repair do real solver work (~0.1-0.2s each),
    but with every identifier suffixed by ``index`` so no two jobs share
    a fingerprint, a memo-cache line, or a shard.
    """
    parts = [
        f"schema Load{index} {{\n"
        f"  key l{index}_id;\n"
        f"  field l{index}_a;\n"
        f"  field l{index}_b;\n"
        f"}}\n"
    ]
    for t in range(txns):
        parts.append(
            f"txn Mix{index}x{t}(k) {{\n"
            f"  x := select l{index}_a from Load{index}"
            f" where l{index}_id = k;\n"
            f"  y := select l{index}_b from Load{index}"
            f" where l{index}_id = k;\n"
            f"  update Load{index} set l{index}_a = x.l{index}_a"
            f" + y.l{index}_b + {t} where l{index}_id = k;\n"
            f"  update Load{index} set l{index}_b = y.l{index}_b + 1"
            f" where l{index}_id = k;\n"
            f"}}\n"
        )
    return "\n".join(parts)


def job_request(index: int, kind: str = "repair_request", txns: int = 4) -> dict:
    """The wire request document for job ``index``."""
    return {
        "version": 1,
        "kind": kind,
        "source": synthetic_source(index, txns=txns),
    }


def _post_json(url: str, body: dict, timeout: float, tenant: Optional[str] = None):
    """(status, payload, retry_after_seconds) for one POST."""
    data = json.dumps(body).encode("utf-8")
    headers = {"Content-Type": "application/json"}
    if tenant is not None:
        headers["X-Repro-Tenant"] = tenant
    request = urllib.request.Request(
        url, data=data, method="POST", headers=headers,
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read()), None
    except urllib.error.HTTPError as exc:
        retry_after = exc.headers.get("Retry-After")
        return (
            exc.code,
            json.loads(exc.read() or b"{}"),
            float(retry_after) if retry_after else None,
        )


def submit_and_wait(
    base: str,
    body: dict,
    timeout: float = 300.0,
    poll_interval: float = POLL_INTERVAL,
    tenant: Optional[str] = None,
):
    """Submit one job, honouring backpressure, and poll it to the end.

    Returns ``(final_job_doc, latency_seconds, backpressure_retries)``;
    latency counts from the *first* submission attempt, so time spent
    backing off is charged to the request, exactly as a client feels it.
    ``tenant`` is sent as ``X-Repro-Tenant`` when given.
    """
    deadline = time.monotonic() + timeout
    started = time.monotonic()
    retries = 0
    while True:
        status, payload, retry_after = _post_json(
            base + "/v1/jobs", body, timeout=timeout, tenant=tenant
        )
        if status == 202:
            break
        if status in (429, 503):
            retries += 1
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"backpressure never cleared within {timeout}s: {payload}"
                )
            time.sleep(retry_after if retry_after is not None else 1.0)
            continue
        raise RuntimeError(f"submit failed with {status}: {payload}")
    job_id = payload["id"]
    url = base + f"/v1/jobs/{job_id}"
    while True:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            doc = json.loads(resp.read())
        if doc["status"] in ("done", "failed"):
            return doc, time.monotonic() - started, retries
        if time.monotonic() > deadline:
            raise TimeoutError(f"job {job_id} still {doc['status']} after {timeout}s")
        time.sleep(poll_interval)


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (no interpolation, no numpy)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, int(round(q / 100.0 * len(ordered) + 0.5)))
    return ordered[min(rank, len(ordered)) - 1]


def run_load(
    base: str,
    jobs: int,
    concurrency: int,
    kind: str = "repair_request",
    txns: int = 4,
    timeout: float = 300.0,
    first_index: int = 0,
    tenant: Optional[str] = None,
) -> dict:
    """Closed-loop load: ``concurrency`` clients drain ``jobs`` unique
    jobs; returns the metrics record for one BENCH_service.json pass.
    ``tenant`` stamps every submission with that ``X-Repro-Tenant``
    identity (the two-tenant fairness smoke drives one flooding and one
    trickling instance of this function)."""
    indexes = iter(range(first_index, first_index + jobs))
    index_lock = threading.Lock()
    latencies: List[float] = []
    errors: List[str] = []
    retries_total = [0]
    results_lock = threading.Lock()

    def client():
        while True:
            with index_lock:
                index = next(indexes, None)
            if index is None:
                return
            try:
                doc, latency, retries = submit_and_wait(
                    base, job_request(index, kind=kind, txns=txns),
                    timeout=timeout, tenant=tenant,
                )
                with results_lock:
                    retries_total[0] += retries
                    if doc["status"] != "done":
                        errors.append(
                            f"job {doc['id']} failed: {doc['error']}"
                        )
                    else:
                        latencies.append(latency)
            except Exception as exc:  # noqa: BLE001 - load boundary
                with results_lock:
                    errors.append(f"{type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=client) for _ in range(concurrency)]
    wall_start = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - wall_start
    completed = len(latencies)
    return {
        "jobs": jobs,
        "concurrency": concurrency,
        "kind": kind,
        "tenant": tenant,
        "completed": completed,
        "errors": len(errors),
        "error_samples": errors[:5],
        "backpressure_retries": retries_total[0],
        "wall_seconds": round(wall, 4),
        "throughput_jobs_per_s": round(completed / wall, 4) if wall else 0.0,
        "latency_p50_s": round(percentile(latencies, 50), 4),
        "latency_p99_s": round(percentile(latencies, 99), 4),
        "latency_max_s": round(max(latencies), 4) if latencies else 0.0,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--url", default="http://127.0.0.1:8472")
    parser.add_argument("--jobs", type=int, default=32)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument(
        "--kind",
        choices=("analyze_request", "repair_request"),
        default="repair_request",
    )
    parser.add_argument(
        "--tenant", default=None,
        help="send every request as this X-Repro-Tenant identity",
    )
    parser.add_argument(
        "--json", metavar="FILE", help="also write the metrics as JSON"
    )
    args = parser.parse_args(argv)
    record = run_load(
        args.url, args.jobs, args.concurrency, kind=args.kind,
        tenant=args.tenant,
    )
    print(json.dumps(record, indent=2, sort_keys=True))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(record, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 1 if record["errors"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
