"""Figure 16 / Appendix A.3: random refactoring vs oracle-guided repair.

For the three largest-anomaly-count benchmarks, run rounds of random
refactorings and compare anomaly counts against Atropos's result.  The
paper's finding: random search essentially never reduces the count and
never reaches the oracle-guided result.
"""

import pytest

from repro.corpus import SEATS, SMALLBANK, TPCC
from repro.exp import run_random_search

BENCHES = (SMALLBANK, SEATS, TPCC)

_results = {}


@pytest.mark.parametrize("bench", BENCHES, ids=[b.name for b in BENCHES])
def test_fig16_random_search(benchmark, bench):
    result = benchmark.pedantic(
        run_random_search,
        args=(bench,),
        kwargs={"rounds": 6, "refactorings_per_round": 8, "seed": 42},
        rounds=1,
        iterations=1,
    )
    _results[bench.name] = result
    # Atropos strictly beats the best random round.
    assert result.atropos_count < result.initial_count
    assert result.atropos_count <= result.best_random
    # Random refactorings at best scratch the surface.
    assert result.best_random >= result.initial_count * 0.5


def test_print_fig16_report():
    if not _results:
        pytest.skip("no results collected")
    print()
    print("Figure 16: anomaly counts -- random rounds vs Atropos")
    for name, result in _results.items():
        print(
            f"  {name:10s} initial={result.initial_count:3d} "
            f"random={result.round_counts} atropos={result.atropos_count}"
        )
