"""Compare a fresh oracle-scaling run against the committed baseline.

Usage::

    python benchmarks/check_bench_regression.py \
        --fresh BENCH_fresh.json --baseline BENCH_oracle.json \
        [--tolerance 0.2]

The committed ``BENCH_oracle.json`` is measured on the full corpus
while CI runs the small smoke corpus, so absolute seconds are not
comparable across the two.  The gate therefore compares the *relative*
speedups -- incremental-vs-pipeline and pipeline-vs-serial -- which are
corpus-size-stable: the fresh run fails if either ratio drops more than
``tolerance`` (default 20%) below the baseline's.

Pool-relative ratios are **not** stable across core counts: on a
single-core host ``strategy="parallel"`` / ``"parallel-incremental"``
degrade to in-process runners, while a multi-core runner spins a real
process pool, shifting them for reasons that have nothing to do with a
code regression.  Each timed strategy therefore records its host shape
(``strategies.<name>.cpu_count`` / ``.workers``) and its ratios are
only gated when the fresh run's shape for *that strategy* matches the
baseline's (older baselines without the per-strategy record fall back
to comparing the global ``environment.cpu_count``).  The
incremental-vs-serial speedup *is* host-shape-stable (both strategies
run single-threaded everywhere), so it is gated unconditionally --
that is the ratio that catches a broken warm-session subsystem on any
CI host.

The persistent-cache record (``persistent_cache.cold`` / ``.warm``) is
gated *within* the fresh run: the warm pass must hit at least as often
as the cold pass, or the cross-run store is not actually warm-starting.
``--require-parallel-incremental`` additionally fails a fresh run that
lacks the ``parallel_incremental_seconds`` / ``persistent_cache`` /
``shard_scheduler`` fields entirely (CI passes it so the bench cannot
silently stop measuring the subsystem).  The ``shard_scheduler`` record
is also gated within the fresh run when the parallel-incremental
strategy ran a real pool: per-worker utilization must be recorded for
every worker, and no worker may have run zero chunks while work
stealing was on -- a starved worker behind a healthy-looking aggregate
speedup is exactly what the record exists to catch.

Result rows (per-benchmark ec/at/cc/rr counts) are compared exactly for
every benchmark present in both runs: a count drift is a correctness
regression, never noise, and fails regardless of tolerance or host.

Per-benchmark ``repair_seconds`` (the plan search alone, measured on
the incremental strategy) is gated like the pipeline-relative ratios:
only when the host shape matches the baseline's, and against its own
``--time-tolerance`` (default 75%, looser than the speedup gate because
single-benchmark wall-clocks are noisier than full-corpus ratios) plus
a 25ms absolute slack that keeps sub-10ms rows out of timer-noise
territory.
``plan_steps`` drift, like count drift, is a correctness gate: the
greedy search is deterministic, so a changed step count on an unchanged
benchmark means the planner changed behaviour.
"""

from __future__ import annotations

import argparse
import json
import sys


def load(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def strategy_shape(data: dict, name: str):
    """(cpu_count, workers) for one timed strategy; older payloads
    without the per-strategy record fall back to the global cpu count
    (with an unknown worker count)."""
    info = data.get("strategies", {}).get(name)
    if info is not None:
        return (info.get("cpu_count"), info.get("workers"))
    return (data.get("environment", {}).get("cpu_count"), None)


def same_shape(fresh: dict, baseline: dict, name: str) -> bool:
    """Whether a strategy's timings are comparable across the two runs:
    cpu counts must match, and worker counts must match when both runs
    recorded them."""
    f_cpus, f_workers = strategy_shape(fresh, name)
    b_cpus, b_workers = strategy_shape(baseline, name)
    if f_cpus != b_cpus:
        return False
    if f_workers is None or b_workers is None:
        return True
    return f_workers == b_workers


def check(
    fresh: dict,
    baseline: dict,
    tolerance: float,
    time_tolerance: float = 0.75,
    require_parallel_incremental: bool = False,
) -> list:
    failures = []

    if require_parallel_incremental:
        if "parallel_incremental_seconds" not in fresh:
            failures.append(
                "fresh run is missing parallel_incremental_seconds "
                "(required field)"
            )
        if "persistent_cache" not in fresh:
            failures.append(
                "fresh run is missing the persistent_cache record "
                "(required field)"
            )
        if "shard_scheduler" not in fresh:
            failures.append(
                "fresh run is missing the shard_scheduler record "
                "(required field)"
            )

    # Scheduler honesty, within the fresh run: a multi-worker
    # parallel-incremental run must carry per-worker utilization, and a
    # worker that did no chunks at all means the work-stealing scheduler
    # is broken (steals should have drained the skew).  Single-worker
    # (degraded in-process) runs record zeros by design and are exempt.
    shards = fresh.get("shard_scheduler") or {}
    _, pi_workers = strategy_shape(fresh, "parallel_incremental")
    if pi_workers is not None and pi_workers > 1:
        utilization = shards.get("shard_utilization") or []
        if len(utilization) != pi_workers:
            failures.append(
                f"shard_scheduler records {len(utilization)} worker "
                f"utilizations for {pi_workers} workers"
            )
        if shards.get("work_stealing") and any(
            w.get("chunks", 0) == 0 for w in shards.get("workers", [])
        ):
            failures.append(
                "a shard worker ran zero chunks despite work stealing "
                f"(steal_count={shards.get('steal_count')})"
            )

    # Warm-start gate, within the fresh run: a second pass over the
    # persistent store must hit at least as often as the first.
    persistent = fresh.get("persistent_cache") or {}
    cold = persistent.get("cold")
    warm = persistent.get("warm")
    if cold is not None and warm is not None:
        if warm["hit_rate"] < cold["hit_rate"]:
            failures.append(
                "persistent cache warm pass hit-rate regressed below the "
                f"cold pass: {warm['hit_rate']:.2%} < {cold['hit_rate']:.2%}"
            )

    base_rows = {r["name"]: r for r in baseline.get("rows", [])}
    for row in fresh.get("rows", []):
        base = base_rows.get(row["name"])
        if base is None:
            continue
        for column in ("ec", "at", "cc", "rr"):
            # Required columns: a fresh row missing one is itself a bug,
            # so let the KeyError surface rather than skipping the gate.
            if row[column] != base[column]:
                failures.append(
                    f"{row['name']}: {column} drifted "
                    f"{base[column]} -> {row[column]} (correctness gate)"
                )
        if "plan_steps" in base:
            # Optional in the *baseline* only (older baselines predate
            # it); a fresh row missing the key is an emission bug and
            # surfaces as a KeyError, like the required columns above.
            if row["plan_steps"] != base["plan_steps"]:
                failures.append(
                    f"{row['name']}: plan_steps drifted "
                    f"{base['plan_steps']} -> {row['plan_steps']} "
                    "(correctness gate)"
                )
        if same_shape(fresh, baseline, "incremental") and "repair_seconds" in base:
            # repair_seconds is measured on the (single-threaded)
            # incremental strategy.  25ms absolute slack on top of the
            # fractional tolerance: sub-10ms baselines (SIBench,
            # Killrchat) are dominated by timer noise and 0.1ms JSON
            # rounding, and must not flake.
            ceiling = base["repair_seconds"] * (1.0 + time_tolerance) + 0.025
            if row["repair_seconds"] > ceiling:
                failures.append(
                    f"{row['name']}: repair_seconds regressed: "
                    f"{row['repair_seconds']:.3f}s > {ceiling:.3f}s "
                    f"(baseline {base['repair_seconds']:.3f}s "
                    f"+ {time_tolerance:.0%} + 25ms)"
                )
    gates = [("incremental_speedup_vs_serial", "incremental-vs-serial speedup")]
    if same_shape(fresh, baseline, "pipeline"):
        gates += [
            ("speedup", "pipeline-vs-serial speedup"),
            ("incremental_speedup_vs_pipeline", "incremental-vs-pipeline speedup"),
        ]
    else:
        print(
            "pipeline host shape differs "
            f"({strategy_shape(baseline, 'pipeline')} -> "
            f"{strategy_shape(fresh, 'pipeline')}); "
            "pipeline-relative ratios reported but not gated"
        )
    if same_shape(fresh, baseline, "parallel_incremental"):
        gates.append(
            (
                "parallel_incremental_speedup_vs_incremental",
                "parallel-incremental-vs-incremental speedup",
            )
        )
    else:
        print(
            "parallel-incremental host shape differs "
            f"({strategy_shape(baseline, 'parallel_incremental')} -> "
            f"{strategy_shape(fresh, 'parallel_incremental')}); "
            "its ratio reported but not gated"
        )

    for key, label in gates:
        base_value = baseline.get(key)
        fresh_value = fresh.get(key)
        if base_value is None or fresh_value is None:
            # Older baselines predate the incremental entry; skip rather
            # than fail so the first run after an upgrade can seed it.
            continue
        floor = base_value * (1.0 - tolerance)
        if fresh_value < floor:
            failures.append(
                f"{label} regressed: {fresh_value:.2f}x < "
                f"{floor:.2f}x (baseline {base_value:.2f}x - {tolerance:.0%})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", required=True, help="freshly measured JSON")
    parser.add_argument("--baseline", required=True, help="committed baseline JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional speedup drop before failing (default 0.2)",
    )
    parser.add_argument(
        "--time-tolerance",
        type=float,
        default=0.75,
        help="allowed fractional per-benchmark repair_seconds increase "
        "on same-shape hosts before failing (default 0.75)",
    )
    parser.add_argument(
        "--require-parallel-incremental",
        action="store_true",
        help="fail if the fresh run lacks parallel_incremental_seconds "
        "or the persistent_cache record",
    )
    args = parser.parse_args(argv)

    fresh = load(args.fresh)
    baseline = load(args.baseline)
    failures = check(
        fresh,
        baseline,
        args.tolerance,
        args.time_tolerance,
        require_parallel_incremental=args.require_parallel_incremental,
    )

    persistent = fresh.get("persistent_cache") or {}
    print(
        f"fresh: pipeline {fresh.get('speedup')}x, "
        f"incremental {fresh.get('incremental_speedup_vs_pipeline')}x, "
        f"parallel-incremental "
        f"{fresh.get('parallel_incremental_speedup_vs_incremental')}x, "
        f"warm cache hit-rate "
        f"{(persistent.get('warm') or {}).get('hit_rate')} | "
        f"baseline: pipeline {baseline.get('speedup')}x, "
        f"incremental {baseline.get('incremental_speedup_vs_pipeline')}x"
    )
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("bench regression gate: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
