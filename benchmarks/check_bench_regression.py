"""Compare a fresh oracle-scaling run against the committed baseline.

Usage::

    python benchmarks/check_bench_regression.py \
        --fresh BENCH_fresh.json --baseline BENCH_oracle.json \
        [--tolerance 0.2]

The committed ``BENCH_oracle.json`` is measured on the full corpus
while CI runs the small smoke corpus, so absolute seconds are not
comparable across the two.  The gate therefore compares the *relative*
speedups -- incremental-vs-pipeline and pipeline-vs-serial -- which are
corpus-size-stable: the fresh run fails if either ratio drops more than
``tolerance`` (default 20%) below the baseline's.

Pipeline-relative ratios are **not** stable across core counts: on a
single-core host ``strategy="parallel"`` degrades to the in-process
runner, while a multi-core runner spins a real process pool, shifting
them for reasons that have nothing to do with a code regression.
Those ratios are therefore only gated when the fresh run's
``cpu_count`` matches the baseline's.  The incremental-vs-serial
speedup *is* host-shape-stable (both strategies run single-threaded
everywhere), so it is gated unconditionally -- that is the ratio that
catches a broken warm-session subsystem on any CI host.

Result rows (per-benchmark ec/at/cc/rr counts) are compared exactly for
every benchmark present in both runs: a count drift is a correctness
regression, never noise, and fails regardless of tolerance or host.
"""

from __future__ import annotations

import argparse
import json
import sys


def load(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def check(fresh: dict, baseline: dict, tolerance: float) -> list:
    failures = []

    base_rows = {r["name"]: r for r in baseline.get("rows", [])}
    for row in fresh.get("rows", []):
        base = base_rows.get(row["name"])
        if base is None:
            continue
        for column in ("ec", "at", "cc", "rr"):
            if row[column] != base[column]:
                failures.append(
                    f"{row['name']}: {column} drifted "
                    f"{base[column]} -> {row[column]} (correctness gate)"
                )

    fresh_cpus = fresh.get("environment", {}).get("cpu_count")
    base_cpus = baseline.get("environment", {}).get("cpu_count")
    gates = [("incremental_speedup_vs_serial", "incremental-vs-serial speedup")]
    if fresh_cpus == base_cpus:
        gates += [
            ("speedup", "pipeline-vs-serial speedup"),
            ("incremental_speedup_vs_pipeline", "incremental-vs-pipeline speedup"),
        ]
    else:
        print(
            f"host shape differs (cpu_count {base_cpus} -> {fresh_cpus}); "
            "pipeline-relative ratios reported but not gated"
        )

    for key, label in gates:
        base_value = baseline.get(key)
        fresh_value = fresh.get(key)
        if base_value is None or fresh_value is None:
            # Older baselines predate the incremental entry; skip rather
            # than fail so the first run after an upgrade can seed it.
            continue
        floor = base_value * (1.0 - tolerance)
        if fresh_value < floor:
            failures.append(
                f"{label} regressed: {fresh_value:.2f}x < "
                f"{floor:.2f}x (baseline {base_value:.2f}x - {tolerance:.0%})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", required=True, help="freshly measured JSON")
    parser.add_argument("--baseline", required=True, help="committed baseline JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional speedup drop before failing (default 0.2)",
    )
    args = parser.parse_args(argv)

    fresh = load(args.fresh)
    baseline = load(args.baseline)
    failures = check(fresh, baseline, args.tolerance)

    print(
        f"fresh: pipeline {fresh.get('speedup')}x, "
        f"incremental {fresh.get('incremental_speedup_vs_pipeline')}x | "
        f"baseline: pipeline {baseline.get('speedup')}x, "
        f"incremental {baseline.get('incremental_speedup_vs_pipeline')}x"
    )
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("bench regression gate: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
