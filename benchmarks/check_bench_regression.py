"""Compare a fresh oracle-scaling run against the committed baseline.

Usage::

    python benchmarks/check_bench_regression.py \
        --fresh BENCH_fresh.json --baseline BENCH_oracle.json \
        [--tolerance 0.2]

The committed ``BENCH_oracle.json`` is measured on the full corpus
while CI runs the small smoke corpus, so absolute seconds are not
comparable across the two.  The gate therefore compares the *relative*
speedups -- incremental-vs-pipeline and pipeline-vs-serial -- which are
corpus-size-stable: the fresh run fails if either ratio drops more than
``tolerance`` (default 20%) below the baseline's.

Pipeline-relative ratios are **not** stable across core counts: on a
single-core host ``strategy="parallel"`` degrades to the in-process
runner, while a multi-core runner spins a real process pool, shifting
them for reasons that have nothing to do with a code regression.
Those ratios are therefore only gated when the fresh run's
``cpu_count`` matches the baseline's.  The incremental-vs-serial
speedup *is* host-shape-stable (both strategies run single-threaded
everywhere), so it is gated unconditionally -- that is the ratio that
catches a broken warm-session subsystem on any CI host.

Result rows (per-benchmark ec/at/cc/rr counts) are compared exactly for
every benchmark present in both runs: a count drift is a correctness
regression, never noise, and fails regardless of tolerance or host.

Per-benchmark ``repair_seconds`` (the plan search alone, measured on
the incremental strategy) is gated like the pipeline-relative ratios:
only when the host shape matches the baseline's, and against its own
``--time-tolerance`` (default 75%, looser than the speedup gate because
single-benchmark wall-clocks are noisier than full-corpus ratios) plus
a 25ms absolute slack that keeps sub-10ms rows out of timer-noise
territory.
``plan_steps`` drift, like count drift, is a correctness gate: the
greedy search is deterministic, so a changed step count on an unchanged
benchmark means the planner changed behaviour.
"""

from __future__ import annotations

import argparse
import json
import sys


def load(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def check(
    fresh: dict, baseline: dict, tolerance: float, time_tolerance: float = 0.75
) -> list:
    failures = []

    fresh_cpus = fresh.get("environment", {}).get("cpu_count")
    base_cpus = baseline.get("environment", {}).get("cpu_count")

    base_rows = {r["name"]: r for r in baseline.get("rows", [])}
    for row in fresh.get("rows", []):
        base = base_rows.get(row["name"])
        if base is None:
            continue
        for column in ("ec", "at", "cc", "rr"):
            # Required columns: a fresh row missing one is itself a bug,
            # so let the KeyError surface rather than skipping the gate.
            if row[column] != base[column]:
                failures.append(
                    f"{row['name']}: {column} drifted "
                    f"{base[column]} -> {row[column]} (correctness gate)"
                )
        if "plan_steps" in base:
            # Optional in the *baseline* only (older baselines predate
            # it); a fresh row missing the key is an emission bug and
            # surfaces as a KeyError, like the required columns above.
            if row["plan_steps"] != base["plan_steps"]:
                failures.append(
                    f"{row['name']}: plan_steps drifted "
                    f"{base['plan_steps']} -> {row['plan_steps']} "
                    "(correctness gate)"
                )
        if fresh_cpus == base_cpus and "repair_seconds" in base:
            # 25ms absolute slack on top of the fractional tolerance:
            # sub-10ms baselines (SIBench, Killrchat) are dominated by
            # timer noise and 0.1ms JSON rounding, and must not flake.
            ceiling = base["repair_seconds"] * (1.0 + time_tolerance) + 0.025
            if row["repair_seconds"] > ceiling:
                failures.append(
                    f"{row['name']}: repair_seconds regressed: "
                    f"{row['repair_seconds']:.3f}s > {ceiling:.3f}s "
                    f"(baseline {base['repair_seconds']:.3f}s "
                    f"+ {time_tolerance:.0%} + 25ms)"
                )
    gates = [("incremental_speedup_vs_serial", "incremental-vs-serial speedup")]
    if fresh_cpus == base_cpus:
        gates += [
            ("speedup", "pipeline-vs-serial speedup"),
            ("incremental_speedup_vs_pipeline", "incremental-vs-pipeline speedup"),
        ]
    else:
        print(
            f"host shape differs (cpu_count {base_cpus} -> {fresh_cpus}); "
            "pipeline-relative ratios reported but not gated"
        )

    for key, label in gates:
        base_value = baseline.get(key)
        fresh_value = fresh.get(key)
        if base_value is None or fresh_value is None:
            # Older baselines predate the incremental entry; skip rather
            # than fail so the first run after an upgrade can seed it.
            continue
        floor = base_value * (1.0 - tolerance)
        if fresh_value < floor:
            failures.append(
                f"{label} regressed: {fresh_value:.2f}x < "
                f"{floor:.2f}x (baseline {base_value:.2f}x - {tolerance:.0%})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", required=True, help="freshly measured JSON")
    parser.add_argument("--baseline", required=True, help="committed baseline JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional speedup drop before failing (default 0.2)",
    )
    parser.add_argument(
        "--time-tolerance",
        type=float,
        default=0.75,
        help="allowed fractional per-benchmark repair_seconds increase "
        "on same-shape hosts before failing (default 0.75)",
    )
    args = parser.parse_args(argv)

    fresh = load(args.fresh)
    baseline = load(args.baseline)
    failures = check(fresh, baseline, args.tolerance, args.time_tolerance)

    print(
        f"fresh: pipeline {fresh.get('speedup')}x, "
        f"incremental {fresh.get('incremental_speedup_vs_pipeline')}x | "
        f"baseline: pipeline {baseline.get('speedup')}x, "
        f"incremental {baseline.get('incremental_speedup_vs_pipeline')}x"
    )
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("bench regression gate: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
