"""Oracle execution-pipeline scaling: serial seed loop vs parallel+cached.

Runs the full-corpus Table 1 workload (repair fixpoint plus CC/RR
sweeps) twice -- once with the seed serial oracle, once with the
pipeline's parallel+cached strategy -- verifies the outputs are
identical, and records wall-clock speedup, cache hit-rate, queries/sec
and solver counters into ``BENCH_oracle.json`` so CI tracks the perf
trajectory on every run.

Environment knobs:

- ``ORACLE_BENCH_CORPUS=small`` restricts to a three-benchmark smoke
  subset (the CI benchmark job uses this);
- ``BENCH_ORACLE_OUT`` overrides the JSON output path.
"""

import json
import os
import platform
import time

from repro.analysis import AnomalyOracle, EC, QueryCache
from repro.corpus import ALL_BENCHMARKS, BY_NAME
from repro.exp import run_table1

SMOKE_CORPUS = ("TPC-C", "SmallBank", "Courseware")


def _corpus():
    if os.environ.get("ORACLE_BENCH_CORPUS") == "small":
        return tuple(BY_NAME[name] for name in SMOKE_CORPUS)
    return ALL_BENCHMARKS


def _canonical(pairs):
    return [
        (
            p.txn,
            p.c1,
            p.c2,
            tuple(sorted(p.fields1)),
            tuple(sorted(p.fields2)),
            p.interferers,
            p.patterns,
        )
        for p in pairs
    ]


def _row_signature(rows):
    return [
        (
            row.name,
            row.ec,
            row.at,
            row.cc,
            row.rr,
            row.tables_after,
            _canonical(row.report.initial_pairs),
            _canonical(row.report.residual_pairs),
        )
        for row in rows
    ]


class TestStrategyEquivalence:
    """Acceptance gate: the parallel+cached oracle must reproduce the
    serial seed oracle exactly on TPC-C, SmallBank, and Courseware."""

    def test_identical_access_pairs(self):
        for name in SMOKE_CORPUS:
            program = BY_NAME[name].program()
            serial = AnomalyOracle(EC).analyze(program)
            oracle = AnomalyOracle(EC, strategy="parallel")
            try:
                pipelined = oracle.analyze(program)
            finally:
                oracle.close()
            assert _canonical(serial.pairs) == _canonical(pipelined.pairs), name
            assert serial.pairs_checked == pipelined.pairs_checked, name


def test_oracle_scaling(capsys):
    corpus = _corpus()

    # Serial seed baseline (best of two to damp scheduler noise).
    serial_seconds = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        serial_rows = run_table1(corpus)
        serial_seconds = min(serial_seconds, time.perf_counter() - start)

    # Parallel+cached pipeline, cold cache each repetition.
    pipeline_seconds = float("inf")
    for _ in range(2):
        cache = QueryCache()
        start = time.perf_counter()
        pipeline_rows = run_table1(corpus, strategy="parallel", cache=cache)
        pipeline_seconds = min(pipeline_seconds, time.perf_counter() - start)

    assert _row_signature(serial_rows) == _row_signature(pipeline_rows)

    queries = cache.hits + cache.misses
    solver_stats = {}
    for row in pipeline_rows:
        for key, value in row.oracle_stats.items():
            solver_stats[key] = solver_stats.get(key, 0) + value

    speedup = serial_seconds / pipeline_seconds if pipeline_seconds else 0.0
    payload = {
        "benchmark": "oracle-scaling",
        "workload": "table1 (repair fixpoint + CC/RR sweeps)",
        "corpus": [b.name for b in corpus],
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "serial_seconds": round(serial_seconds, 4),
        "pipeline_seconds": round(pipeline_seconds, 4),
        "speedup": round(speedup, 2),
        "queries": queries,
        "queries_per_second": {
            "serial": round(queries / serial_seconds, 1),
            "pipeline": round(queries / pipeline_seconds, 1),
        },
        "cache": {
            "hits": cache.hits,
            "misses": cache.misses,
            "hit_rate": round(cache.hit_rate, 4),
        },
        "solver": solver_stats,
        "rows": [
            {"name": r.name, "ec": r.ec, "at": r.at, "cc": r.cc, "rr": r.rr}
            for r in pipeline_rows
        ],
    }
    out_path = os.environ.get("BENCH_ORACLE_OUT", "BENCH_oracle.json")
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    with capsys.disabled():
        print(
            f"\noracle scaling: serial={serial_seconds:.2f}s "
            f"pipeline={pipeline_seconds:.2f}s speedup={speedup:.2f}x "
            f"cache hit-rate={cache.hit_rate:.1%} -> {out_path}"
        )

    # Identical results are a hard gate (asserted above).  The speedup
    # floor here is intentionally below the ~2.4x we measure, so CI noise
    # cannot turn the perf record into a flake; BENCH_oracle.json carries
    # the actual number.
    assert speedup > 1.2
