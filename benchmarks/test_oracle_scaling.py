"""Oracle execution scaling: serial seed loop vs parallel+cached
pipeline vs incremental warm-solver sessions vs sharded
parallel-incremental workers, plus the persistent cross-run cache.

Runs the full-corpus Table 1 workload (repair fixpoint plus CC/RR
sweeps) four ways -- the seed serial oracle, the PR 1 parallel+cached
pipeline, the PR 2 incremental session strategy, and the PR 4
parallel-incremental shard-worker pool -- verifies the outputs are
identical, then runs a cold+warm persistent-cache pair (same on-disk
store, fresh cache objects, standing in for separate processes) and
records wall-clock speedups, cache hit-rates (including the warm-start
gain), session reuse, queries/sec, solver counters, per-strategy worker
shapes, and per-benchmark repair timings (``rows[*].repair_seconds``,
the plan search alone) into ``BENCH_oracle.json`` so CI tracks the perf
trajectory on every run.

Environment knobs:

- ``ORACLE_BENCH_CORPUS=small`` restricts to a three-benchmark smoke
  subset (the CI benchmark job uses this);
- ``BENCH_ORACLE_OUT`` overrides the JSON output path;
- ``ORACLE_BENCH_CACHE_DIR`` pins the persistent-cache directory (a
  temp dir by default), letting CI warm-start a second full run.
"""

import json
import os
import platform
import tempfile
import time

from repro.analysis import AnomalyOracle, EC, PersistentQueryCache, QueryCache
from repro.analysis.pipeline import resolve_strategy
from repro.corpus import ALL_BENCHMARKS, BY_NAME
from repro.exp import run_table1

SMOKE_CORPUS = ("TPC-C", "SmallBank", "Courseware")


def _corpus():
    if os.environ.get("ORACLE_BENCH_CORPUS") == "small":
        return tuple(BY_NAME[name] for name in SMOKE_CORPUS)
    return ALL_BENCHMARKS


def _canonical(pairs):
    return [
        (
            p.txn,
            p.c1,
            p.c2,
            tuple(sorted(p.fields1)),
            tuple(sorted(p.fields2)),
            p.interferers,
            p.patterns,
        )
        for p in pairs
    ]


def _row_signature(rows):
    return [
        (
            row.name,
            row.ec,
            row.at,
            row.cc,
            row.rr,
            row.tables_after,
            _canonical(row.report.initial_pairs),
            _canonical(row.report.residual_pairs),
        )
        for row in rows
    ]


def _count_signature(rows):
    """Level counts only: CC/RR pair *fields* may legitimately differ
    between strategies (an equally-valid witness of the same anomaly),
    the counts and the repair-facing EC pairs may not."""
    return [(r.name, r.ec, r.at, r.cc, r.rr, r.tables_after) for r in rows]


def _repair_signature(rows):
    """The repair-facing output: EC pair sets, field-exact."""
    return [
        (
            row.name,
            _canonical(row.report.initial_pairs),
            _canonical(row.report.residual_pairs),
        )
        for row in rows
    ]


class TestStrategyEquivalence:
    """Acceptance gate: the pipeline and incremental oracles must
    reproduce the serial seed oracle exactly on TPC-C, SmallBank, and
    Courseware."""

    def test_identical_access_pairs(self):
        for name in SMOKE_CORPUS:
            program = BY_NAME[name].program()
            serial = AnomalyOracle(EC).analyze(program)
            for strategy in ("parallel", "incremental", "parallel-incremental"):
                oracle = AnomalyOracle(EC, strategy=strategy)
                try:
                    report = oracle.analyze(program)
                finally:
                    oracle.close()
                assert _canonical(serial.pairs) == _canonical(report.pairs), (
                    name,
                    strategy,
                )
                assert serial.pairs_checked == report.pairs_checked, (name, strategy)


def test_oracle_scaling(capsys):
    corpus = _corpus()

    # Serial seed baseline (best of three to damp scheduler noise).
    serial_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        serial_rows = run_table1(corpus)
        serial_seconds = min(serial_seconds, time.perf_counter() - start)

    # Parallel+cached pipeline (PR 1), cold cache each repetition.
    pipeline_seconds = float("inf")
    for _ in range(3):
        cache = QueryCache()
        start = time.perf_counter()
        pipeline_rows = run_table1(corpus, strategy="parallel", cache=cache)
        pipeline_seconds = min(pipeline_seconds, time.perf_counter() - start)

    # Incremental warm-solver sessions (PR 2), cold cache + pool each
    # repetition.  Pool counters are deterministic across repetitions,
    # so capture them once; close each runner so the three warm pools
    # don't stack up in memory.
    incremental_seconds = float("inf")
    session_counters = {}
    best_repair_seconds = {}
    for _ in range(3):
        inc_cache = QueryCache()
        with resolve_strategy("incremental") as runner:
            start = time.perf_counter()
            incremental_rows = run_table1(corpus, strategy=runner, cache=inc_cache)
            incremental_seconds = min(
                incremental_seconds, time.perf_counter() - start
            )
            session_counters = runner.pool.counters()
        # Like the aggregate seconds, per-benchmark repair timings keep
        # the best of the three repetitions to damp scheduler noise.
        for r in incremental_rows:
            best_repair_seconds[r.name] = min(
                best_repair_seconds.get(r.name, float("inf")),
                r.repair_seconds,
            )

    # Sharded parallel-incremental workers (PR 4), cold cache + fresh
    # worker pool each repetition.  On single-core hosts this degrades
    # to the in-process incremental path by design; the timing is
    # recorded either way, and check_bench_regression.py only compares
    # it across hosts whose worker shape matches.
    parallel_incremental_seconds = float("inf")
    pi_counters = {}
    pi_shards = {}
    pi_workers = 0
    for _ in range(3):
        pi_cache = QueryCache()
        with resolve_strategy("parallel-incremental") as runner:
            pi_workers = runner.max_workers
            start = time.perf_counter()
            pi_rows = run_table1(corpus, strategy=runner, cache=pi_cache)
            parallel_incremental_seconds = min(
                parallel_incremental_seconds, time.perf_counter() - start
            )
            pi_counters = runner.counters()
            # Work-stealing scheduler accounting (all zeros when the
            # strategy degraded to the in-process path on one core).
            pi_shards = runner.shard_stats()

    # Persistent cross-run cache: one cold and one warm pass over the
    # same on-disk store, each with a *fresh* cache object (standing in
    # for a fresh process).  The warm pass must hit strictly more and
    # produce identical rows.
    cache_dir = os.environ.get("ORACLE_BENCH_CACHE_DIR")
    cache_dir_ctx = None
    if cache_dir is None:
        cache_dir_ctx = tempfile.TemporaryDirectory(prefix="oracle-bench-cache-")
        cache_dir = cache_dir_ctx.name
    persistent = {}
    persistent_rows = {}
    for phase in ("cold", "warm"):
        disk_cache = PersistentQueryCache(cache_dir)
        if phase == "cold":
            # A pinned ORACLE_BENCH_CACHE_DIR may carry a previous
            # run's store; the cold pass must actually be cold.
            disk_cache.clear()
        with resolve_strategy("incremental") as runner:
            start = time.perf_counter()
            persistent_rows[phase] = run_table1(
                corpus, strategy=runner, cache=disk_cache
            )
            persistent[phase] = {
                "seconds": round(time.perf_counter() - start, 4),
                "hits": disk_cache.hits,
                "misses": disk_cache.misses,
                "hit_rate": round(disk_cache.hit_rate, 4),
                "persistent_hits": disk_cache.persistent_hits,
                "entries": len(disk_cache),
            }
        disk_cache.close()
    if cache_dir_ctx is not None:
        cache_dir_ctx.cleanup()

    # Hard equivalence gates: the pipeline matches the seed exactly;
    # the warm-session strategies (incremental, parallel-incremental,
    # and both persistent-cache passes) match every count and the
    # repair-facing EC pair sets field-for-field (their first,
    # witness-bearing solve per session runs on a virgin solver).
    # CC/RR witness fields may differ only by picking another model of
    # the same encoding, which tests/test_oracle_session.py validates
    # semantically per query.
    assert _row_signature(serial_rows) == _row_signature(pipeline_rows)
    assert _count_signature(serial_rows) == _count_signature(incremental_rows)
    assert _repair_signature(serial_rows) == _repair_signature(incremental_rows)
    assert _count_signature(serial_rows) == _count_signature(pi_rows)
    assert _repair_signature(serial_rows) == _repair_signature(pi_rows)
    for phase_rows in persistent_rows.values():
        assert _count_signature(serial_rows) == _count_signature(phase_rows)
        assert _repair_signature(serial_rows) == _repair_signature(phase_rows)
    # The warm pass reads everything it can from disk: strictly higher
    # hit rate, nothing re-solved.
    assert persistent["warm"]["hit_rate"] > persistent["cold"]["hit_rate"]
    assert persistent["warm"]["persistent_hits"] > 0

    queries = cache.hits + cache.misses
    solver_stats = {}
    for row in pipeline_rows:
        for key, value in row.oracle_stats.items():
            solver_stats[key] = solver_stats.get(key, 0) + value
    incremental_stats = {}
    for row in incremental_rows:
        for key, value in row.oracle_stats.items():
            incremental_stats[key] = incremental_stats.get(key, 0) + value

    speedup = serial_seconds / pipeline_seconds if pipeline_seconds else 0.0
    incremental_speedup = (
        pipeline_seconds / incremental_seconds if incremental_seconds else 0.0
    )
    total_speedup = (
        serial_seconds / incremental_seconds if incremental_seconds else 0.0
    )
    pi_speedup_vs_incremental = (
        incremental_seconds / parallel_incremental_seconds
        if parallel_incremental_seconds
        else 0.0
    )
    pi_speedup_vs_serial = (
        serial_seconds / parallel_incremental_seconds
        if parallel_incremental_seconds
        else 0.0
    )
    host_cpus = os.cpu_count()
    payload = {
        "benchmark": "oracle-scaling",
        "workload": "table1 (repair fixpoint + CC/RR sweeps)",
        "corpus": [b.name for b in corpus],
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": host_cpus,
        },
        # Per-strategy host shape: the regression gate only compares a
        # strategy's timings across hosts whose cpu_count/workers match,
        # since pool strategies scale with cores and single-threaded
        # strategies do not.
        "strategies": {
            "serial": {"cpu_count": host_cpus, "workers": 1},
            "pipeline": {"cpu_count": host_cpus, "workers": host_cpus},
            "incremental": {"cpu_count": host_cpus, "workers": 1},
            "parallel_incremental": {
                "cpu_count": host_cpus,
                "workers": pi_workers,
            },
        },
        "serial_seconds": round(serial_seconds, 4),
        "pipeline_seconds": round(pipeline_seconds, 4),
        "incremental_seconds": round(incremental_seconds, 4),
        "parallel_incremental_seconds": round(parallel_incremental_seconds, 4),
        "speedup": round(speedup, 2),
        "incremental_speedup_vs_pipeline": round(incremental_speedup, 2),
        "incremental_speedup_vs_serial": round(total_speedup, 2),
        "parallel_incremental_speedup_vs_incremental": round(
            pi_speedup_vs_incremental, 2
        ),
        "parallel_incremental_speedup_vs_serial": round(
            pi_speedup_vs_serial, 2
        ),
        "queries": queries,
        "queries_per_second": {
            "serial": round(queries / serial_seconds, 1),
            "pipeline": round(queries / pipeline_seconds, 1),
            "incremental": round(queries / incremental_seconds, 1),
            "parallel_incremental": round(
                queries / parallel_incremental_seconds, 1
            ),
        },
        "cache": {
            "hits": cache.hits,
            "misses": cache.misses,
            "hit_rate": round(cache.hit_rate, 4),
        },
        "persistent_cache": persistent,
        "sessions": session_counters,
        "shard_sessions": pi_counters,
        # Scheduler honesty record: steal totals plus per-shard-worker
        # utilization, so a "speedup" with one starved worker is visible
        # in the JSON rather than averaged away.
        "shard_scheduler": {
            **pi_shards,
            "shard_utilization": [
                w["utilization"] for w in pi_shards.get("workers", [])
            ],
        },
        "solver": solver_stats,
        "incremental_solver": incremental_stats,
        "rows": [
            {
                "name": r.name,
                "ec": r.ec,
                "at": r.at,
                "cc": r.cc,
                "rr": r.rr,
                # Wall-clock of the plan search alone (the repair
                # fixpoint, excluding the CC/RR sweeps), measured on the
                # incremental strategy; gated by
                # check_bench_regression.py on same-shape hosts.
                "repair_seconds": round(best_repair_seconds[r.name], 4),
                "plan_steps": len(r.plan),
            }
            for r in incremental_rows
        ],
    }
    out_path = os.environ.get("BENCH_ORACLE_OUT", "BENCH_oracle.json")
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    with capsys.disabled():
        print(
            f"\noracle scaling: serial={serial_seconds:.2f}s "
            f"pipeline={pipeline_seconds:.2f}s "
            f"incremental={incremental_seconds:.2f}s "
            f"parallel-incremental={parallel_incremental_seconds:.2f}s "
            f"[{pi_workers} worker(s)] | "
            f"pipeline {speedup:.2f}x, incremental {incremental_speedup:.2f}x "
            f"over pipeline ({total_speedup:.2f}x over serial), "
            f"cache hit-rate={cache.hit_rate:.1%}, "
            f"persistent warm hit-rate "
            f"{persistent['cold']['hit_rate']:.1%} -> "
            f"{persistent['warm']['hit_rate']:.1%}, "
            f"session model-hits={session_counters.get('model_hits', 0)} "
            f"-> {out_path}"
        )

    # Identical results are a hard gate (asserted above).  The speedup
    # floors are intentionally below what we measure, so CI noise cannot
    # turn the perf record into a flake; BENCH_oracle.json carries the
    # actual numbers.  incremental-vs-serial is host-shape-stable (both
    # run single-threaded everywhere); the pipeline-relative ratio is
    # only meaningful where "parallel" degrades to in-process, i.e. on
    # single-core hosts like the bench machine.
    assert speedup > 1.2
    assert total_speedup > 1.5
    if (os.cpu_count() or 1) == 1:
        assert incremental_speedup > 1.2
        # Single core: parallel-incremental must have degraded to the
        # in-process path (no pool, no IPC), tracking incremental.
        assert pi_workers == 1
        assert parallel_incremental_seconds <= incremental_seconds * 1.35
    else:
        # Multi-core: a real pool must have spun up; results were
        # already gated identical above.  The wall-clock gate is only
        # meaningful on the full corpus -- the smoke corpus's per-query
        # work is too thin to amortise pool start-up and IPC, so a
        # timing assert there would be a nondeterministic CI gate.
        # check_bench_regression.py still tracks the recorded ratio
        # across matching host shapes.
        assert pi_workers > 1
        if os.environ.get("ORACLE_BENCH_CORPUS") != "small":
            assert parallel_incremental_seconds <= incremental_seconds * 1.25
