"""Live-repair overhead and validation record: ``BENCH_live.json``.

For every corpus benchmark this bench compiles the greedy repair plan
into live mutation-rewrite rules (:mod:`repro.live`), runs the full
validation harness (serial fidelity + the four-way anomaly probe:
original / post-postprocess static / pre-postprocess target / live),
and measures the rewrite overhead on the simulated store against the
``simulated_throughput_probe`` prediction the repair search already
uses to rank plans.  The verdict fields are hard gates here (every
benchmark must pass); the throughput record is tracked by
``check_live_regression.py`` on matching host shapes.

Everything in the row set is seeded and single-threaded, so anomaly
counts and rule counts are deterministic and comparable across hosts;
only the throughput ratio depends on host shape via the committed
baseline's provenance.

Environment knobs:

- ``LIVE_BENCH_CORPUS=small`` restricts to a three-benchmark smoke
  subset (the CI benchmark job uses this);
- ``LIVE_BENCH_OUT`` overrides the JSON output path.
"""

import json
import math
import os
import platform

from repro.corpus import ALL_BENCHMARKS, BY_NAME
from repro.live import (
    DEFAULT_SAMPLES,
    DEFAULT_SCALE,
    DEFAULT_SEED,
    measure_overhead,
    validate_benchmark,
)

SMOKE_CORPUS = ("TPC-C", "SmallBank", "Courseware")

OVERHEAD_CLIENTS = 16
OVERHEAD_SCALE = 8
OVERHEAD_SEED = 7


def _corpus():
    if os.environ.get("LIVE_BENCH_CORPUS") == "small":
        return tuple(BY_NAME[name] for name in SMOKE_CORPUS)
    return ALL_BENCHMARKS


def test_live_bench(capsys):
    corpus = _corpus()
    rows = []
    for bench in corpus:
        verdict = validate_benchmark(
            bench,
            samples=DEFAULT_SAMPLES,
            seed=DEFAULT_SEED,
            scale=DEFAULT_SCALE,
        )
        measurement = measure_overhead(
            bench,
            clients=OVERHEAD_CLIENTS,
            scale=OVERHEAD_SCALE,
            seed=OVERHEAD_SEED,
        )
        # Hard gates: the rules must replay the repair faithfully in
        # serial runs and agree with the pre-postprocess target on the
        # anomaly verdict; the simulated store must stay live under the
        # rewrite hook.  These hold on every host (all seeded).
        assert verdict.passed, (bench.name, verdict.to_json())
        assert measurement.live_throughput > 0, bench.name
        assert math.isfinite(measurement.overhead_ratio), bench.name
        rows.append(
            {
                "name": bench.name,
                "rules": verdict.rules,
                "identity_rules": verdict.identity_rules,
                "unsupported": verdict.unsupported,
                "serial_match": verdict.serial_match,
                "verdict_match": verdict.verdict_match,
                "passed": verdict.passed,
                "anomalies": {
                    "original": verdict.original.to_json(),
                    "static": verdict.static.to_json(),
                    "target": verdict.target.to_json(),
                    "live": verdict.live.to_json(),
                },
                "predicted_throughput": round(
                    measurement.predicted_throughput, 3
                ),
                "live_throughput": round(measurement.live_throughput, 3),
                "overhead_ratio": round(measurement.overhead_ratio, 4),
                "live_avg_latency_ms": round(
                    measurement.live_avg_latency_ms, 4
                ),
                "live_p95_latency_ms": round(
                    measurement.live_p95_latency_ms, 4
                ),
            }
        )

    payload = {
        "benchmark": "live-overhead",
        "workload": "live rule validation + simulated rewrite overhead",
        "corpus": [b.name for b in corpus],
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "samples": DEFAULT_SAMPLES,
        "seed": DEFAULT_SEED,
        "scale": DEFAULT_SCALE,
        "overhead": {
            "clients": OVERHEAD_CLIENTS,
            "scale": OVERHEAD_SCALE,
            "seed": OVERHEAD_SEED,
        },
        "rows": rows,
    }
    out_path = os.environ.get("LIVE_BENCH_OUT", "BENCH_live.json")
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    worst = max(rows, key=lambda r: r["overhead_ratio"])
    with capsys.disabled():
        print(
            f"\nlive bench: {len(rows)} benchmark(s), all verdicts pass; "
            f"worst overhead {worst['name']} "
            f"{worst['overhead_ratio']:.3f}x "
            f"({worst['predicted_throughput']:.1f} -> "
            f"{worst['live_throughput']:.1f} txn/s) -> {out_path}"
        )
