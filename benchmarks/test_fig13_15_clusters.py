"""Figures 13-15: the same sweeps across VA / US / Global clusters.

The appendix figures repeat SmallBank, SEATS, and TPC-C on a single-DC
cluster (VA) and a globally distributed one (N. Virginia / London /
Tokyo).  The key cross-cluster claim: the EC-vs-SC latency penalty grows
with geographic spread, while EC (and AT-EC) latencies barely move.
"""

import pytest

from repro.corpus import SEATS, SMALLBANK, TPCC
from repro.exp import run_perf_sweep
from repro.store import CLUSTERS

from conftest import BENCH_PERF_CONFIG

# Low client count so latency reflects topology rather than queueing.
LOW_CLIENTS = (2, 16)
BENCHES = (SMALLBANK, SEATS, TPCC)

_results = {}


def _run(bench, cluster):
    return run_perf_sweep(
        bench, cluster, client_counts=LOW_CLIENTS,
        config=BENCH_PERF_CONFIG, scale=12,
    )


@pytest.mark.parametrize("bench", BENCHES, ids=[b.name for b in BENCHES])
@pytest.mark.parametrize("cluster_name", list(CLUSTERS), ids=list(CLUSTERS))
def test_cluster_sweep(benchmark, bench, cluster_name):
    cluster = CLUSTERS[cluster_name]
    sweep = benchmark.pedantic(_run, args=(bench, cluster), rounds=1, iterations=1)
    _results[(bench.name, cluster_name)] = sweep
    sc = sweep.series["SC"].points[0]
    ec = sweep.series["EC"].points[0]
    assert sc.avg_latency_ms > ec.avg_latency_ms


@pytest.mark.parametrize("bench", BENCHES, ids=[b.name for b in BENCHES])
def test_sc_penalty_grows_with_distance(bench):
    needed = [(bench.name, c) for c in ("VA", "US", "Global")]
    if not all(k in _results for k in needed):
        pytest.skip("cluster sweeps not collected")

    def sc_latency(cluster):
        return _results[(bench.name, cluster)].series["SC"].points[0].avg_latency_ms

    assert sc_latency("VA") < sc_latency("US") < sc_latency("Global")


def test_print_cluster_report():
    if not _results:
        pytest.skip("no sweeps collected")
    print()
    print("Figures 13-15: SC latency at 2 clients (ms) per cluster")
    for bench in BENCHES:
        row = []
        for cluster in ("VA", "US", "Global"):
            sweep = _results.get((bench.name, cluster))
            if sweep:
                ec = sweep.series["EC"].points[0].avg_latency_ms
                sc = sweep.series["SC"].points[0].avg_latency_ms
                row.append(f"{cluster}: EC {ec:.1f} / SC {sc:.1f}")
        print(f"  {bench.name:10s} " + " | ".join(row))
