"""Service throughput scaling: 1 worker process vs N, plus the
worker-path differential gate.

Boots the durable service twice -- once with a single worker process,
once with ``SERVICE_BENCH_WORKERS`` of them -- and drives both with the
closed-loop load driver (:mod:`benchmarks.service_load`): every job a
*unique* synthetic DSL program, so the memo cache cannot answer for the
solver and shard keys spread across the pool.  Records throughput,
latency percentiles, backpressure retries, and the single-vs-multi
speedup into ``BENCH_service.json``.

Correctness rides along as a hard gate: a sample of corpus benchmarks
is run through the multi-worker job path and the verdict/plan fields
must be byte-identical to a direct ``Workspace(strategy="serial")``
call -- the differential guarantee of ``tests/test_service.py``
extended across the process boundary.

Like the oracle bench, timing gates are host-shape-aware: the >= 1.5x
multi-worker speedup is asserted only on hosts with >= 2 CPUs (a
single core cannot run two solver processes faster than one -- the
recorded ``environment.cpu_count`` lets ``check_service_regression.py``
apply the same rule to the committed baseline).  Correctness and
zero-error gates are unconditional.

Environment knobs:

- ``SERVICE_BENCH_OUT`` -- output path (default ``BENCH_service.json``);
- ``SERVICE_BENCH_JOBS`` -- jobs per pass (default 12; CI smoke uses
  fewer);
- ``SERVICE_BENCH_CONCURRENCY`` -- closed-loop clients (default 8);
- ``SERVICE_BENCH_WORKERS`` -- worker processes in the multi pass
  (default: ``min(4, cpu_count)``, at least 2);
- ``SERVICE_BENCH_AGGRESSOR`` / ``SERVICE_BENCH_VICTIM`` -- job counts
  for the two-tenant fairness pass (0 aggressors skips it).

The fairness pass floods tenant ``flood`` with a backlog of unique
jobs, then trickles tenant ``trickle`` through the same service one
job at a time.  Deficit-weighted claim scheduling must keep the victim
flowing: the gates (here and in ``check_service_regression.py
--require-fairness``) are full victim completion and zero lost or
duplicated jobs; victim latency is recorded for the report.
"""

import json
import os
import platform
import threading
import time
import urllib.request

from repro.api import AnalyzeRequest, RepairRequest, Workspace, WorkspaceConfig
from repro.service import make_server

from service_load import job_request, run_load

DIFFERENTIAL_BENCHMARKS = ("SIBench", "Courseware", "SmallBank")

#: Index offsets keeping the fairness pass's synthetic programs unique
#: against the throughput passes (and each tenant against the other).
AGGRESSOR_INDEX = 10_000
VICTIM_INDEX = 20_000


def _host_workers() -> int:
    env = os.environ.get("SERVICE_BENCH_WORKERS")
    if env:
        return int(env)
    return max(2, min(4, os.cpu_count() or 1))


def _serve(tmp_path, name, workers):
    """(server, base_url) with its own job db under ``tmp_path``."""
    server = make_server(
        port=0,
        workers=workers,
        job_db=str(tmp_path / f"{name}.sqlite"),
        worker_config=WorkspaceConfig(strategy="incremental"),
        max_queue_depth=4096,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    return server, thread, f"http://{host}:{port}"


def _wait_workers(base, workers, timeout=60):
    """Block until every worker process reports alive, so the measured
    window contains solver work, not Python interpreter boot."""
    deadline = time.time() + timeout
    while time.time() < deadline:
        with urllib.request.urlopen(base + "/v1/stats", timeout=10) as resp:
            stats = json.loads(resp.read())
        if stats["service"]["workers_alive"] >= workers:
            break
        time.sleep(0.1)
    else:
        raise TimeoutError(f"workers never came up: {stats['service']}")
    # A live process is not a ready worker (imports take a second or
    # two under spawn); push a few trivial warmup jobs through the
    # queue so the measured window starts with booted interpreters.
    warmups = [
        _post(
            base, "/v1/jobs",
            {
                "version": 1,
                "kind": "analyze_request",
                "source": (
                    f"schema Warm{i} {{ key w{i}_id; field w{i}_v; }}\n"
                    f"txn Touch{i}(k) {{\n"
                    f"  x := select w{i}_v from Warm{i} where w{i}_id = k;\n"
                    f"  update Warm{i} set w{i}_v = x.w{i}_v + 1"
                    f" where w{i}_id = k;\n"
                    f"}}\n"
                ),
            },
        )["id"]
        for i in range(workers * 2)
    ]
    for job_id in warmups:
        _wait(base, job_id, timeout=timeout)


def _post(base, path, body, tenant=None):
    data = json.dumps(body).encode()
    headers = {"Content-Type": "application/json"}
    if tenant is not None:
        headers["X-Repro-Tenant"] = tenant
    request = urllib.request.Request(
        base + path, data=data, method="POST", headers=headers,
    )
    with urllib.request.urlopen(request, timeout=300) as resp:
        return json.loads(resp.read())


def _wait(base, job_id, timeout=300):
    deadline = time.time() + timeout
    while time.time() < deadline:
        with urllib.request.urlopen(
            base + f"/v1/jobs/{job_id}", timeout=60
        ) as resp:
            doc = json.loads(resp.read())
        if doc["status"] in ("done", "failed"):
            return doc
        time.sleep(0.05)
    raise TimeoutError(job_id)


def _fairness_pass(tmp_path, workers):
    """Two-tenant isolation smoke: flood one tenant, trickle the other.

    Returns the ``fairness`` record for BENCH_service.json (or ``None``
    when disabled via ``SERVICE_BENCH_AGGRESSOR=0``).
    """
    aggressor_jobs = int(os.environ.get("SERVICE_BENCH_AGGRESSOR", "24"))
    victim_jobs = int(os.environ.get("SERVICE_BENCH_VICTIM", "5"))
    if aggressor_jobs <= 0 or victim_jobs <= 0:
        return None
    server, thread, base = _serve(tmp_path, "fairness", workers)
    try:
        _wait_workers(base, workers)
        # Flood: fire-and-forget submissions build a real backlog (a
        # closed-loop driver would cap it at its own concurrency).
        for i in range(aggressor_jobs):
            _post(
                base, "/v1/jobs",
                job_request(AGGRESSOR_INDEX + i, kind="analyze_request"),
                tenant="flood",
            )
        # Trickle: one closed-loop victim client submitting into the
        # standing backlog.
        victim = run_load(
            base, victim_jobs, 1, kind="analyze_request",
            first_index=VICTIM_INDEX, tenant="trickle",
        )
        with urllib.request.urlopen(base + "/v1/stats", timeout=30) as resp:
            stats = json.loads(resp.read())
        expected = workers * 2 + aggressor_jobs + victim_jobs  # + warmups
        total = stats["jobs"]["total"]
        tenants = stats["service"].get("tenants", {})
    finally:
        server.close()
        thread.join(timeout=10)
    return {
        "aggressor_jobs": aggressor_jobs,
        "victim": victim,
        "victim_completion_ratio": (
            victim["completed"] / victim_jobs if victim_jobs else 0.0
        ),
        "victim_p99_s": victim["latency_p99_s"],
        "jobs_expected": expected,
        "jobs_in_store": total,
        "lost_or_duplicated": total != expected,
        "tenants": tenants,
    }


def test_service_scaling(tmp_path, capsys):
    jobs = int(os.environ.get("SERVICE_BENCH_JOBS", "12"))
    concurrency = int(os.environ.get("SERVICE_BENCH_CONCURRENCY", "8"))
    multi_workers = _host_workers()
    cpu_count = os.cpu_count()

    passes = {}
    for name, workers in (("single", 1), ("multi", multi_workers)):
        server, thread, base = _serve(tmp_path, name, workers)
        try:
            _wait_workers(base, workers)
            # Unique job indexes across passes: the second pass must not
            # re-submit programs the first one already solved.
            first_index = 0 if name == "single" else jobs
            record = run_load(
                base, jobs, concurrency, first_index=first_index
            )
            record["workers"] = workers
            passes[name] = record
        finally:
            server.close()
            thread.join(timeout=10)

    # Differential across the process boundary: corpus verdicts/plans
    # served by worker *processes* must equal direct library calls.
    differential = {"workers": multi_workers, "benchmarks": [], "identical": True}
    server, thread, base = _serve(tmp_path, "differential", multi_workers)
    try:
        submitted = []
        for bench in DIFFERENTIAL_BENCHMARKS:
            analyze = _post(base, "/v1/jobs", AnalyzeRequest(benchmark=bench).to_json())
            repair = _post(base, "/v1/jobs", RepairRequest(benchmark=bench).to_json())
            submitted.append((bench, analyze["id"], repair["id"]))
        with Workspace(strategy="serial") as ws:
            for bench, analyze_id, repair_id in submitted:
                analyzed = _wait(base, analyze_id)
                repaired = _wait(base, repair_id)
                assert analyzed["status"] == "done", analyzed["error"]
                assert repaired["status"] == "done", repaired["error"]
                direct_analyze = ws.analyze(AnalyzeRequest(benchmark=bench))
                direct_repair = ws.repair(RepairRequest(benchmark=bench))
                pairs_match = analyzed["result"]["pairs"] == [
                    p.to_json() for p in direct_analyze.pairs
                ]
                repair_match = (
                    repaired["result"]["plan"] == direct_repair.plan
                    and repaired["result"]["repaired_program"]
                    == direct_repair.repaired_program
                )
                differential["benchmarks"].append(
                    {
                        "name": bench,
                        "pairs_identical": pairs_match,
                        "repair_identical": repair_match,
                    }
                )
                differential["identical"] &= pairs_match and repair_match
                assert pairs_match, f"{bench}: worker-path pairs diverged"
                assert repair_match, f"{bench}: worker-path repair diverged"
    finally:
        server.close()
        thread.join(timeout=10)

    fairness = _fairness_pass(tmp_path, multi_workers)

    single = passes["single"]
    multi = passes["multi"]
    speedup = (
        multi["throughput_jobs_per_s"] / single["throughput_jobs_per_s"]
        if single["throughput_jobs_per_s"]
        else 0.0
    )
    payload = {
        "benchmark": "service-load",
        "workload": (
            "unique synthetic repair jobs over POST /v1/jobs "
            "(closed loop, Retry-After honoured)"
        ),
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": cpu_count,
        },
        "jobs_per_pass": jobs,
        "concurrency": concurrency,
        "passes": passes,
        "multi_worker_speedup": round(speedup, 2),
        "differential": differential,
        "fairness": fairness,
    }
    out_path = os.environ.get("SERVICE_BENCH_OUT", "BENCH_service.json")
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    with capsys.disabled():
        print(
            f"\nservice load: single={single['throughput_jobs_per_s']:.2f} "
            f"jobs/s, multi[{multi_workers}w]="
            f"{multi['throughput_jobs_per_s']:.2f} jobs/s "
            f"({speedup:.2f}x), p99 {multi['latency_p99_s']:.2f}s, "
            f"differential identical={differential['identical']} "
            + (
                f"fairness victim {fairness['victim_completion_ratio']:.0%} "
                f"@ p99 {fairness['victim_p99_s']:.2f}s "
                if fairness
                else ""
            )
            + f"-> {out_path}"
        )

    # Unconditional gates: no job may fail or error, and worker-path
    # results must be identical to the library.
    assert single["errors"] == 0, single["error_samples"]
    assert multi["errors"] == 0, multi["error_samples"]
    assert single["completed"] == jobs
    assert multi["completed"] == jobs
    assert differential["identical"]
    if fairness is not None:
        # The isolation gates: a flooded queue must not starve (or
        # lose) the trickling tenant's jobs.
        assert fairness["victim"]["errors"] == 0, (
            fairness["victim"]["error_samples"]
        )
        assert fairness["victim_completion_ratio"] == 1.0, fairness
        assert not fairness["lost_or_duplicated"], fairness
    # The scaling gate needs cores to scale onto: on a single-CPU host
    # N solver processes time-slice one core (the recorded cpu_count
    # tells check_service_regression.py the same thing about the
    # committed baseline).
    if (cpu_count or 1) >= 2:
        assert speedup >= 1.5, (
            f"multi-worker speedup {speedup:.2f}x < 1.5x on a "
            f"{cpu_count}-core host"
        )
