"""Refactoring rule tests: intro rho / intro rho.f / redirect / logger."""

import pytest

from repro.errors import RefactoringError
from repro.lang import ast, parse_program
from repro.refactor import (
    apply_logger,
    apply_redirect,
    intro_field,
    intro_schema,
)
from repro.refactor.logger import build_logger, increment_delta, logger_applicable
from repro.refactor.redirect import build_redirect, redirect_applicable


class TestIntroRules:
    def test_intro_schema(self, courseware):
        p = intro_schema(courseware, "NEW", key=("n_id",))
        assert p.has_schema("NEW")
        assert p.schema("NEW").key == ("n_id",)

    def test_intro_schema_duplicate_rejected(self, courseware):
        with pytest.raises(RefactoringError):
            intro_schema(courseware, "STUDENT", key=("x",))

    def test_intro_field(self, courseware):
        p = intro_field(courseware, "STUDENT", "st_extra")
        assert "st_extra" in p.schema("STUDENT").fields
        assert "st_extra" not in p.schema("STUDENT").key

    def test_intro_field_duplicate_rejected(self, courseware):
        with pytest.raises(RefactoringError):
            intro_field(courseware, "STUDENT", "st_name")

    def test_intro_field_unknown_table(self, courseware):
        with pytest.raises(RefactoringError):
            intro_field(courseware, "NOPE", "x")

    def test_original_untouched(self, courseware):
        intro_field(courseware, "STUDENT", "st_extra")
        assert "st_extra" not in courseware.schema("STUDENT").fields


class TestBuildRedirect:
    def test_forward_reference_path(self, courseware):
        rw = build_redirect(courseware, "EMAIL", "STUDENT", ["em_addr"])
        assert rw is not None
        assert dict(rw.theta.key_map) == {"em_id": "st_em_id"}
        assert rw.fields()["em_addr"] == "st_em_addr"

    def test_no_reference_path_returns_none(self, courseware):
        assert build_redirect(courseware, "STUDENT", "EMAIL", ["st_name"]) is None

    def test_reverse_key_reference(self):
        p = parse_program(
            "schema HUB { key id; field n; }"
            "schema SAT { key s_id ref HUB.id; field v; }"
            "txn f(k) { x := select v from SAT where s_id = k; return x.v; }"
        )
        rw = build_redirect(p, "SAT", "HUB", ["v"])
        assert rw is not None
        assert dict(rw.theta.key_map) == {"s_id": "id"}

    def test_paper_naming_convention(self, courseware):
        rw = build_redirect(courseware, "COURSE", "STUDENT", ["co_avail"])
        assert rw.fields()["co_avail"] == "st_co_avail"


class TestApplyRedirect:
    def test_figure9_getst(self, courseware):
        rw = build_redirect(courseware, "EMAIL", "STUDENT", ["em_addr"])
        refactored, corrs = apply_redirect(courseware, rw)
        get_st = refactored.transaction("getSt")
        s2 = list(ast.iter_db_commands(get_st))[1]
        assert s2.table == "STUDENT"
        assert s2.fields == ("st_em_addr",)
        assert ast.where_fields(s2.where) == ("st_em_id",)
        # Return expression follows the moved field.
        assert get_st.ret == ast.At(ast.Const(1), "y", "st_em_addr")

    def test_figure9_setst_update(self, courseware):
        rw = build_redirect(courseware, "EMAIL", "STUDENT", ["em_addr"])
        refactored, _ = apply_redirect(courseware, rw)
        set_st = refactored.transaction("setSt")
        u2 = list(ast.iter_db_commands(set_st))[2]
        assert isinstance(u2, ast.Update)
        assert u2.table == "STUDENT"
        assert u2.written_fields == ("st_em_addr",)

    def test_value_correspondence_recorded(self, courseware):
        rw = build_redirect(courseware, "EMAIL", "STUDENT", ["em_addr"])
        _, corrs = apply_redirect(courseware, rw)
        assert len(corrs) == 1
        corr = corrs[0]
        assert corr.src_table == "EMAIL" and corr.dst_table == "STUDENT"
        assert corr.src_field == "em_addr" and corr.dst_field == "st_em_addr"
        assert corr.alpha.value == "any"

    def test_target_field_added_to_schema(self, courseware):
        rw = build_redirect(courseware, "EMAIL", "STUDENT", ["em_addr"])
        refactored, _ = apply_redirect(courseware, rw)
        assert "st_em_addr" in refactored.schema("STUDENT").fields

    def test_result_still_validates(self, courseware):
        from repro.lang.validate import validate_program

        rw = build_redirect(courseware, "EMAIL", "STUDENT", ["em_addr"])
        refactored, _ = apply_redirect(courseware, rw)
        validate_program(refactored)

    def test_inapplicable_when_scan_touches_field(self):
        p = parse_program(
            "schema A { key id; field x; }"
            "schema B { key id; field b_a ref A.id; field y; }"
            "txn f(k) { u := select x from A where true; return sum(u.x); }"
        )
        rw = build_redirect(p, "A", "B", ["x"])
        assert rw is not None
        assert redirect_applicable(p, rw) is not None
        with pytest.raises(RefactoringError):
            apply_redirect(p, rw)


class TestIncrementDelta:
    def _expr(self, text):
        from repro.lang import parse_expression

        return parse_expression(text)

    def test_plus_right(self):
        assert increment_delta(self._expr("x.v + 3"), ("x", "v")) == ast.Const(3)

    def test_plus_left(self):
        assert increment_delta(self._expr("3 + x.v"), ("x", "v")) == ast.Const(3)

    def test_minus(self):
        delta = increment_delta(self._expr("x.v - 2"), ("x", "v"))
        assert delta == ast.BinOp("-", ast.Const(0), ast.Const(2))

    def test_wrong_var(self):
        assert increment_delta(self._expr("y.v + 1"), ("x", "v")) is None

    def test_blind_write(self):
        assert increment_delta(self._expr("42"), ("x", "v")) is None

    def test_multiplication_rejected(self):
        assert increment_delta(self._expr("x.v * 2"), ("x", "v")) is None


class TestApplyLogger:
    # Direct rule application needs the combined COURSE update already
    # split (the repair engine's preprocessing does this; Figure 11 top).
    SPLIT_SRC = """
    schema COURSE { key co_id; field co_avail; field co_st_cnt; }
    txn regSt(course) {
      x := select co_st_cnt from COURSE where co_id = course;
      update COURSE set co_st_cnt = x.co_st_cnt + 1 where co_id = course;
      update COURSE set co_avail = true where co_id = course;
    }
    """

    @pytest.fixture
    def split_courseware(self):
        return parse_program(self.SPLIT_SRC)

    def test_courseware_count_logging(self, split_courseware):
        rw = build_logger(split_courseware, "COURSE", "co_st_cnt")
        assert rw.log_table == "COURSE_CO_ST_CNT_LOG"
        refactored, corrs = apply_logger(split_courseware, rw)
        schema = refactored.schema("COURSE_CO_ST_CNT_LOG")
        assert schema.key == ("co_id", "log_id")
        assert "co_st_cnt_log" in schema.fields

    def test_update_becomes_insert(self, split_courseware):
        rw = build_logger(split_courseware, "COURSE", "co_st_cnt")
        refactored, _ = apply_logger(split_courseware, rw)
        reg_st = refactored.transaction("regSt")
        inserts = [
            c for c in ast.iter_db_commands(reg_st) if isinstance(c, ast.Insert)
        ]
        assert len(inserts) == 1
        assignments = dict(inserts[0].assignments)
        assert isinstance(assignments["log_id"], ast.Uuid)
        assert assignments["co_st_cnt_log"] == ast.Const(1)

    def test_correspondence_uses_sum(self, split_courseware):
        rw = build_logger(split_courseware, "COURSE", "co_st_cnt")
        _, corrs = apply_logger(split_courseware, rw)
        assert corrs[0].alpha.value == "sum"

    def test_multi_field_update_blocks_logger(self, courseware):
        # The unsplit running example: U2 writes co_st_cnt and co_avail
        # together, so the logger precondition fails.
        rw = build_logger(courseware, "COURSE", "co_st_cnt")
        assert logger_applicable(courseware, rw) is not None

    def test_reads_become_log_sums(self):
        src = """
        schema T { key id; field v; }
        txn incr(k) {
          x := select v from T where id = k;
          update T set v = x.v + 1 where id = k;
        }
        txn get(k) {
          x := select v from T where id = k;
          return x.v;
        }
        """
        p = parse_program(src)
        rw = build_logger(p, "T", "v")
        refactored, _ = apply_logger(p, rw)
        get = refactored.transaction("get")
        assert isinstance(get.ret, ast.Agg)
        assert get.ret.func == "sum"

    def test_blind_write_blocks_logging(self):
        src = """
        schema T { key id; field v; }
        txn incr(k) {
          x := select v from T where id = k;
          update T set v = x.v + 1 where id = k;
        }
        txn reset(k) { update T set v = 0 where id = k; }
        """
        p = parse_program(src)
        rw = build_logger(p, "T", "v")
        assert logger_applicable(p, rw) is not None

    def test_key_field_rejected(self, courseware):
        rw = build_logger(courseware, "COURSE", "co_id")
        assert logger_applicable(courseware, rw) is not None

    def test_insert_initialisation_zero_dropped(self):
        src = """
        schema T { key id; field v; }
        txn create(k) { insert into T values (id = k, v = 0); }
        txn incr(k) {
          x := select v from T where id = k;
          update T set v = x.v + 1 where id = k;
        }
        """
        p = parse_program(src)
        rw = build_logger(p, "T", "v")
        refactored, _ = apply_logger(p, rw)
        create = refactored.transaction("create")
        (insert,) = list(ast.iter_db_commands(create))
        assert "v" not in dict(insert.assignments)

    def test_insert_initialisation_nonzero_seeds_log(self):
        src = """
        schema T { key id; field v; }
        txn create(k) { insert into T values (id = k, v = 10); }
        txn incr(k) {
          x := select v from T where id = k;
          update T set v = x.v + 1 where id = k;
        }
        """
        p = parse_program(src)
        rw = build_logger(p, "T", "v")
        refactored, _ = apply_logger(p, rw)
        create = refactored.transaction("create")
        commands = list(ast.iter_db_commands(create))
        assert len(commands) == 2
        assert commands[1].table == "T_V_LOG"
        assert dict(commands[1].assignments)["v_log"] == ast.Const(10)

    def test_result_still_validates(self, split_courseware):
        from repro.lang.validate import validate_program

        rw = build_logger(split_courseware, "COURSE", "co_st_cnt")
        refactored, _ = apply_logger(split_courseware, rw)
        validate_program(refactored)
