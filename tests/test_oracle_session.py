"""Incremental oracle sessions: differential equivalence against the
cold solver, activation-group stress, and session lifecycle.

The differential class is the PR's acceptance gate: for every corpus
program, every focus pair x interferer, and every anomaly mode
(EC/CC/RR/SC), the warm :class:`OracleSession` verdict must equal the
cold ``solve_query`` verdict.  Witnesses must match exactly at EC (the
level the repair loop consumes -- a session's first query runs on a
virgin solver and is bit-identical to cold); at warmer levels the
retained learned clauses may legitimately steer the solver to a
*different* model of the same encoding, so any witness that differs
from the cold one is validated semantically: the incremental model must
satisfy the cold encoding (alias transitivity + the level's axioms +
some violation disjunct), i.e. a cold solver pinned to that model would
accept it and report exactly that witness.
"""

import pickle
import random

import pytest

from repro.analysis import CC, EC, RR, SC, OracleSession, summarize_program
from repro.analysis.encoding import PairSession
from repro.analysis.pipeline import QueryPlanner, solve_query
from repro.corpus import ALL_BENCHMARKS, BY_NAME
from repro.errors import SolverError
from repro.smt.formula import And, FormulaBuilder, Or, evaluate
from repro.smt.solver import Solver, lit, stats_delta

ALL_LEVELS = (EC, CC, RR, SC)


def _witness_fields(witness):
    if witness is None:
        return None
    return (
        witness.pattern,
        tuple(sorted(witness.fields1)),
        tuple(sorted(witness.fields2)),
    )


class TestDifferential:
    """Incremental sessions against the cold solver, corpus-wide."""

    @pytest.mark.parametrize("bench", ALL_BENCHMARKS, ids=lambda b: b.name)
    def test_all_pairs_all_modes(self, bench):
        summaries = summarize_program(bench.program())
        pool = OracleSession()
        planner = QueryPlanner()
        cold_memo = {}
        checked = 0
        for level in ALL_LEVELS:
            plan = planner.plan(summaries, level, True)
            for spec in plan.queries():
                if spec.cache_key in cold_memo:
                    cold = cold_memo[spec.cache_key]
                else:
                    cold = solve_query(
                        spec.c1, spec.c2, spec.summary_b, level, True
                    )
                    cold_memo[spec.cache_key] = cold
                session_key = spec.cache_key[:3] + (True,)
                warm = pool.solve(
                    spec.c1, spec.c2, spec.summary_b, level, key=session_key
                )
                checked += 1
                # Hard gate: verdicts agree on every pair x mode.
                assert (cold.witness is None) == (warm.witness is None), (
                    bench.name, level.name, spec.a_name,
                    spec.c1.label, spec.c2.label, spec.summary_b.name,
                )
                if warm.witness is None:
                    continue
                if level is EC:
                    # Virgin-session solve: bit-identical to cold.
                    assert warm.witness == cold.witness, (
                        bench.name, spec.a_name, spec.c1.label, spec.c2.label,
                    )
                elif warm.witness != cold.witness:
                    self._assert_witness_realizable(
                        spec, level, pool, session_key, warm.witness
                    )
        assert checked > 0

    @staticmethod
    def _assert_witness_realizable(spec, level, pool, session_key, witness):
        """The incremental model behind a diverging witness must satisfy
        the cold encoding of the query, and imply exactly that witness."""
        session = pool.session(spec.c1, spec.c2, spec.summary_b, key=session_key)
        model = session._reusable_model(level)
        if model is None:
            model = session._models[-1]
        encoder = session._encoder
        assert encoder.transitivity_holds(model)
        assert encoder.model_satisfies(level, model)
        implicated = [
            d for d in session._disjuncts if evaluate(d.formula, model)
        ]
        assert implicated, "diverging witness must come from a genuine model"
        fields1 = frozenset().union(*(d.fields1 for d in implicated))
        fields2 = frozenset().union(*(d.fields2 for d in implicated))
        assert witness.fields1 == fields1 and witness.fields2 == fields2


class TestClauseDbDifferential:
    """The arena clause store against the retired object store, corpus
    wide: the arena is a decision-faithful transliteration, so warm
    sessions over either backend must produce identical witnesses on
    every pair x mode -- not just identical verdicts."""

    @pytest.mark.parametrize("bench", ALL_BENCHMARKS, ids=lambda b: b.name)
    def test_all_pairs_all_modes(self, bench, monkeypatch):
        import repro.smt.solver as solver_module

        summaries = summarize_program(bench.program())
        planner = QueryPlanner()
        arena_pool = OracleSession()
        objects_pool = OracleSession()
        checked = 0
        for level in ALL_LEVELS:
            plan = planner.plan(summaries, level, True)
            for spec in plan.queries():
                key = spec.cache_key[:3] + (True,)
                # Sessions warm lazily, so the backend default must be
                # right whenever either pool touches its solver.
                monkeypatch.setattr(
                    solver_module, "DEFAULT_CLAUSE_DB", "arena"
                )
                arena = arena_pool.solve(
                    spec.c1, spec.c2, spec.summary_b, level, key=key
                )
                monkeypatch.setattr(
                    solver_module, "DEFAULT_CLAUSE_DB", "objects"
                )
                objects = objects_pool.solve(
                    spec.c1, spec.c2, spec.summary_b, level, key=key
                )
                checked += 1
                assert arena.witness == objects.witness, (
                    bench.name, level.name, spec.a_name,
                    spec.c1.label, spec.c2.label, spec.summary_b.name,
                )
                assert arena.solved == objects.solved
        assert checked > 0
        for key, sess in objects_pool._sessions.items():
            if sess._encoder is not None:
                assert (
                    sess._encoder.builder.solver.clause_db == "objects"
                ), key


class TestBatchedSweeps:
    """``solve_batch``/``query_batch``: one warm assumption sweep per
    triple, same verdicts as back-to-back per-level queries."""

    @pytest.mark.parametrize("name", ["Courseware", "SmallBank"])
    def test_solve_batch_matches_sequential(self, name):
        summaries = summarize_program(BY_NAME[name].program())
        specs = QueryPlanner().plan(summaries, EC, True).queries()
        seq_pool = OracleSession()
        batch_pool = OracleSession()
        levels = list(ALL_LEVELS)
        for spec in specs:
            key = spec.cache_key[:3] + (True,)
            seq = [
                seq_pool.solve(
                    spec.c1, spec.c2, spec.summary_b, level, key=key
                )
                for level in levels
            ]
            batch = batch_pool.solve_batch(
                spec.c1, spec.c2, spec.summary_b, levels, key=key
            )
            assert len(batch) == len(levels)
            for level, s, b in zip(levels, seq, batch):
                # Verdicts agree on every level; EC comes first in both
                # schedules, so its witness is bit-identical.  Later
                # levels may reuse different remembered models (the
                # batch screens before solving), which shifts witness
                # fields but never the verdict.
                assert (s.witness is None) == (b.witness is None), (
                    name, level.name, spec.a_name,
                    spec.c1.label, spec.c2.label,
                )
                assert s.solved == b.solved
                if level is EC:
                    assert s.witness == b.witness
        assert seq_pool.counters()["queries"] == (
            batch_pool.counters()["queries"]
        )

    def test_single_level_batch_equals_query(self):
        summaries = summarize_program(BY_NAME["Courseware"].program())
        specs = QueryPlanner().plan(summaries, EC, True).queries()
        pool_a = OracleSession()
        pool_b = OracleSession()
        for spec in specs:
            key = spec.cache_key[:3] + (True,)
            one = pool_a.solve(
                spec.c1, spec.c2, spec.summary_b, EC, key=key
            )
            (batched,) = pool_b.solve_batch(
                spec.c1, spec.c2, spec.summary_b, [EC], key=key
            )
            assert one.witness == batched.witness
            assert one.solved == batched.solved

    def test_query_batch_counts_and_prefilter(self):
        summaries = summarize_program(BY_NAME["Courseware"].program())
        # Find a triple with no disjuncts to exercise the screen path.
        empty = None
        for summary in summaries.values():
            for c1, c2 in summary.ordered_pairs():
                for other in summaries.values():
                    session = PairSession(c1, c2, other)
                    session._ensure_warm()
                    if not session._disjuncts:
                        empty = (c1, c2, other)
                        break
                if empty:
                    break
            if empty:
                break
        if empty is None:
            pytest.skip("corpus pair with empty disjuncts not found")
        c1, c2, other = empty
        session = PairSession(c1, c2, other)
        results = session.query_batch([EC, CC], use_prefilter=True)
        assert [(w, s) for w, s, _ in results] == [(None, False)] * 2
        assert session.queries == 2
        results = session.query_batch([EC, CC], use_prefilter=False)
        assert [(w, s) for w, s, _ in results] == [(None, True)] * 2
        assert session.queries == 4

    def test_query_batch_model_reuse_screen(self):
        summaries = summarize_program(BY_NAME["SmallBank"].program())
        specs = QueryPlanner().plan(summaries, EC, True).queries()
        pool = OracleSession()
        hit = False
        for spec in specs:
            key = spec.cache_key[:3] + (True,)
            first = pool.solve_batch(
                spec.c1, spec.c2, spec.summary_b, [EC], key=key
            )[0]
            if first.witness is None:
                continue
            before = pool.counters()["model_hits"]
            again = pool.solve_batch(
                spec.c1, spec.c2, spec.summary_b, [EC], key=key
            )[0]
            assert again.witness == first.witness
            assert pool.counters()["model_hits"] == before + 1
            hit = True
            break
        assert hit, "corpus has no SAT EC pair"


class TestActivationGroupStress:
    """Randomized add/retire/solve stress for the activation-literal
    machinery: the incremental solver must agree with a fresh solver
    built from only the currently active clauses."""

    N_VARS = 12

    def _reference_verdict(self, n_vars, permanent, groups, active, retired):
        if any(g in retired for g in active):
            return False
        solver = Solver()
        for _ in range(n_vars):
            solver.new_var()
        for clause in permanent:
            solver.add_clause(list(clause))
        for g in active:
            for clause in groups[g]:
                solver.add_clause(list(clause))
        return solver.solve().sat

    def test_randomized_add_retire(self):
        rng = random.Random(20260729)
        for trial in range(25):
            solver = Solver()
            variables = [solver.new_var() for _ in range(self.N_VARS)]
            permanent = []
            groups = {}
            group_clauses = {}
            retired = set()

            def random_clause():
                width = rng.randint(1, 3)
                chosen = rng.sample(variables, width)
                return tuple(lit(v, rng.random() < 0.5) for v in chosen)

            for step in range(60):
                action = rng.random()
                if action < 0.25 and len(groups) < 6:
                    gid = solver.new_group()
                    groups[gid] = gid
                    group_clauses[gid] = []
                elif action < 0.55 and group_clauses:
                    gid = rng.choice(sorted(group_clauses))
                    clause = random_clause()
                    solver.add_clause(list(clause), group=gid)
                    if gid not in retired:
                        # Clauses added to a retired group are no-ops.
                        group_clauses[gid].append(clause)
                elif action < 0.7:
                    clause = random_clause()
                    # Keep the permanent core satisfiable-ish: skip the
                    # add if a fresh check says it would go UNSAT.
                    probe = Solver()
                    for _ in range(self.N_VARS):
                        probe.new_var()
                    for c in permanent + [clause]:
                        probe.add_clause(list(c))
                    if probe.solve().sat:
                        solver.add_clause(list(clause))
                        permanent.append(clause)
                elif action < 0.8 and group_clauses:
                    gid = rng.choice(sorted(group_clauses))
                    solver.retire_group(gid)
                    retired.add(gid)
                else:
                    live = sorted(set(group_clauses) - retired)
                    k = rng.randint(0, len(live)) if live else 0
                    active = rng.sample(live, k) if k else []
                    expected = self._reference_verdict(
                        self.N_VARS, permanent, group_clauses, active, retired
                    )
                    got = solver.solve(
                        [solver.group_literal(g) for g in active]
                    ).sat
                    assert got == expected, (trial, step, active)

    def test_retired_group_is_inert(self):
        solver = Solver()
        a = solver.new_var()
        g = solver.new_group()
        solver.add_clause([lit(a)], group=g)
        assert not solver.solve([solver.group_literal(g), lit(a, False)]).sat
        solver.retire_group(g)
        assert solver.is_retired(g)
        # Without the group the old constraint is gone...
        assert solver.solve([lit(a, False)]).sat
        # ...and re-activating a retired group is vacuously UNSAT.
        assert not solver.solve([solver.group_literal(g)]).sat
        # Adding to a retired group is a no-op.
        solver.add_clause([lit(a)], group=g)
        assert solver.solve([lit(a, False)]).sat

    def test_unknown_group_rejected(self):
        solver = Solver()
        v = solver.new_var()
        with pytest.raises(SolverError):
            solver.add_clause([lit(v)], group=v + 17)
        with pytest.raises(SolverError):
            solver.retire_group(v + 17)


class TestIncrementalSolverState:
    """Clause addition after solve() and stats snapshot semantics."""

    def test_add_clause_after_solve(self):
        solver = Solver()
        a, b, c = (solver.new_var() for _ in range(3))
        solver.add_clause([lit(a), lit(b)])
        assert solver.solve().sat
        solver.add_clause([lit(c)])
        result = solver.solve()
        assert result.sat and result.value(c)
        solver.add_clause([lit(a, False)])
        solver.add_clause([lit(b, False)])
        assert not solver.solve().sat

    def test_stats_snapshot_and_delta(self):
        solver = Solver()
        vs = [solver.new_var() for _ in range(6)]
        for i in range(5):
            solver.add_clause([lit(vs[i]), lit(vs[i + 1])])
        before = solver.stats()
        assert solver.solve().sat
        after = solver.stats()
        delta = stats_delta(after, before)
        assert delta["decisions"] == after["decisions"] - before["decisions"]
        # Snapshots are copies: mutating one does not corrupt the solver.
        after["decisions"] = -1
        assert solver.stats()["decisions"] >= 0

    def test_learned_clauses_survive_queries(self):
        builder = FormulaBuilder(fold_constants=True)
        xs = [builder.var(f"x{i}") for i in range(5)]
        # Pigeon-ish core that forces conflicts.
        builder.add(Or(xs[0], xs[1]))
        builder.add(Or(~xs[0], xs[2]))
        builder.add(Or(~xs[1], xs[2]))
        builder.add(Or(~xs[2], xs[3]))
        builder.add(Or(~xs[3], ~xs[0]) & Or(~xs[3], ~xs[1]) | xs[4])
        assert builder.check() is not None
        learned_before = len(builder.solver.learned)
        assert builder.check() is not None
        # Re-solving does not reset the learned database.
        assert len(builder.solver.learned) >= learned_before


class TestBuilderGroups:
    def test_group_scoped_assertions(self):
        builder = FormulaBuilder(fold_constants=True)
        x = builder.var("x")
        g = builder.new_group()
        with builder.group(g):
            builder.add(~x)
        assert builder.check(groups=[g])["x"] is False
        builder.add(x)
        # Group off: consistent.  Group on: contradiction.
        assert builder.check() is not None
        assert builder.check(groups=[g]) is None
        builder.retire_group(g)
        assert builder.check() is not None
        with pytest.raises(SolverError):
            builder.check(groups=[g])

    def test_groups_require_folding_pass(self):
        with pytest.raises(SolverError):
            FormulaBuilder().new_group()

    def test_hash_consing_emits_shared_subformula_once(self):
        builder = FormulaBuilder(fold_constants=True)
        x, y, z = builder.var("x"), builder.var("y"), builder.var("z")
        shared = And(x, y)
        before = builder.solver.num_vars
        builder.add(Or(shared, z))
        mid = builder.solver.num_vars
        builder.add(Or(shared, ~z))
        after = builder.solver.num_vars
        # The first assertion Tseitin-encodes And(x, y); the second
        # reuses the interned literal and allocates no new aux vars
        # beyond its own Or node.
        assert mid > before
        assert after - mid <= mid - before - 1
        lit1 = builder._encode_folded(shared)
        lit2 = builder._encode_folded(shared)
        assert lit1 == lit2

    def test_group_interned_definitions_die_with_group(self):
        builder = FormulaBuilder(fold_constants=True)
        x, y = builder.var("x"), builder.var("y")
        g = builder.new_group()
        with builder.group(g):
            inside = builder._encode_folded(And(x, y))
        builder.retire_group(g)
        g2 = builder.new_group()
        with builder.group(g2):
            rebuilt = builder._encode_folded(And(x, y))
        # The retired group's guarded definition must not be reused.
        assert rebuilt != inside


class TestPairSessionLifecycle:
    def _session(self, level=EC):
        summaries = summarize_program(BY_NAME["SmallBank"].program())
        # Pick any pair with disjuncts.
        for summary in summaries.values():
            for c1, c2 in summary.ordered_pairs():
                for other in summaries.values():
                    session = PairSession(c1, c2, other)
                    witness, solved, _ = session.query(level)
                    if solved and session._disjuncts:
                        return session, (c1, c2, other), witness
        raise AssertionError("corpus has no solvable pair")

    def test_pickle_sheds_warm_state_and_rewarms(self):
        session, (c1, c2, other), witness = self._session()
        assert session.warmed
        clone = pickle.loads(pickle.dumps(session))
        assert not clone.warmed
        rewitness, _, _ = clone.query(EC)
        assert _witness_fields(rewitness) == _witness_fields(witness)

    def test_levels_share_one_warm_solver(self):
        session, _, _ = self._session()
        solver = session._encoder.builder.solver
        for level in (CC, RR, SC):
            session.query(level)
        assert session._encoder.builder.solver is solver
        assert session.queries == 4

    def test_retire_axioms_rebuilds_fresh_group(self):
        session, _, _ = self._session()
        session.query(RR)
        groups_before = dict(session._groups)
        if not groups_before:
            pytest.skip("model shortcut answered RR without axiom groups")
        dropped = session.retire_axioms(RR)
        assert dropped == len(groups_before)
        session.query(RR)
        # A retired feature rebuilds in a fresh group.
        for flag, gid in session._groups.items():
            assert gid != groups_before.get(flag)

    def test_close_retires_groups(self):
        session, _, _ = self._session()
        session.query(RR)
        session.close()
        assert not session.warmed


class TestOracleSessionPool:
    def test_sessions_keyed_by_structure(self):
        summaries = summarize_program(BY_NAME["Courseware"].program())
        pool = OracleSession()
        items = list(summaries.values())
        summary = items[0]
        pairs = summary.ordered_pairs()
        if not pairs:
            pytest.skip("no pairs")
        c1, c2 = pairs[0]
        s1 = pool.session(c1, c2, items[0])
        s2 = pool.session(c1, c2, items[0])
        assert s1 is s2
        assert pool.counters()["created"] == 1
        assert pool.counters()["reused"] == 1

    def test_eviction_bounds_pool(self):
        summaries = summarize_program(BY_NAME["Courseware"].program())
        pool = OracleSession(max_sessions=2)
        summary = list(summaries.values())[0]
        pairs = summary.ordered_pairs()
        others = list(summaries.values())
        made = 0
        for c1, c2 in pairs:
            for other in others:
                pool.session(c1, c2, other)
                made += 1
                if made >= 5:
                    break
            if made >= 5:
                break
        counters = pool.counters()
        assert counters["live"] <= 2
        assert counters["evicted"] >= made - 2

    def test_pool_pickles_and_rewarms(self):
        summaries = summarize_program(BY_NAME["Courseware"].program())
        pool = OracleSession()
        for summary in summaries.values():
            for c1, c2 in summary.ordered_pairs():
                for other in summaries.values():
                    pool.solve(c1, c2, other, EC)
        clone = pickle.loads(pickle.dumps(pool))
        assert len(clone) == len(pool)
        for sess in clone._sessions.values():
            assert not sess.warmed
