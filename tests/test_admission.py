"""Admission control: token buckets, gate ordering, counters."""

import pytest

from repro.api import (
    RateLimitedError,
    RequestTooLargeError,
    ServiceDrainingError,
)
from repro.api.errors import TenantRateLimitedError, TenantSuspendedError
from repro.faults import FaultPlan, FaultRule, activate, deactivate
from repro.service.admission import (
    DEFAULT_MAX_REQUEST_BYTES,
    MAX_TRACKED_CLIENTS,
    AdmissionController,
    TokenBucket,
    resolve_tenant,
)
from repro.service.store import DEFAULT_TENANT


class TestTokenBucket:
    def test_burst_then_refusal(self):
        bucket = TokenBucket(rate=1.0, burst=2.0, now=0.0)
        assert bucket.try_take(0.0) is None
        assert bucket.try_take(0.0) is None
        wait = bucket.try_take(0.0)
        assert wait == pytest.approx(1.0)

    def test_tokens_refill_at_rate(self):
        bucket = TokenBucket(rate=2.0, burst=2.0, now=0.0)
        bucket.try_take(0.0)
        bucket.try_take(0.0)
        assert bucket.try_take(0.0) is not None
        # Half a second at 2 tokens/s refills one token.
        assert bucket.try_take(0.5) is None

    def test_refill_never_exceeds_burst(self):
        bucket = TokenBucket(rate=10.0, burst=3.0, now=0.0)
        for _ in range(3):
            assert bucket.try_take(100.0) is None
        assert bucket.try_take(100.0) is not None


class TestAdmissionController:
    def test_default_admits_everything(self):
        controller = AdmissionController()
        for _ in range(100):
            controller.admit("10.0.0.1", 1024)
        assert controller.counters()["admitted"] == 100

    def test_draining_refuses_first(self):
        controller = AdmissionController(rate_limit=0.0001)
        controller.draining = True
        # Draining wins even over a size violation: clients get the
        # one code that tells them to go elsewhere.
        with pytest.raises(ServiceDrainingError) as exc:
            controller.admit("c", DEFAULT_MAX_REQUEST_BYTES * 10)
        assert exc.value.code == "draining"
        assert exc.value.http_status == 503
        assert controller.counters()["draining"] == 1

    def test_oversized_body_is_413(self):
        controller = AdmissionController(max_request_bytes=100)
        with pytest.raises(RequestTooLargeError) as exc:
            controller.admit("c", 101)
        assert exc.value.code == "request-too-large"
        assert exc.value.http_status == 413
        controller.admit("c", 100)  # the cap itself is admitted

    def test_rate_limit_is_per_client_with_retry_after(self):
        controller = AdmissionController(rate_limit=1.0, rate_burst=1.0)
        controller.admit("alice", 1)
        with pytest.raises(RateLimitedError) as exc:
            controller.admit("alice", 1)
        assert exc.value.code == "rate-limited"
        assert exc.value.retry_after >= 1
        # Bob has his own bucket.
        controller.admit("bob", 1)
        counters = controller.counters()
        assert counters["admitted"] == 2
        assert counters["rate_limited"] == 1

    def test_anonymous_clients_are_not_rate_limited(self):
        controller = AdmissionController(rate_limit=1.0, rate_burst=1.0)
        for _ in range(5):
            controller.admit(None, 1)

    def test_bucket_table_is_bounded(self):
        controller = AdmissionController(rate_limit=100.0)
        for i in range(MAX_TRACKED_CLIENTS + 50):
            controller.admit(f"client-{i}", 1)
        assert len(controller._buckets) == MAX_TRACKED_CLIENTS

    def test_queue_full_counter(self):
        controller = AdmissionController()
        controller.note_queue_full()
        assert controller.counters()["queue_full"] == 1


class TestBucketEviction:
    def test_eviction_is_idle_time_based_not_insertion_order(self, monkeypatch):
        # Regression: the old OrderedDict eviction dropped the *first
        # inserted* bucket, so a veteran active tenant lost its bucket
        # (and an abuser its debt) whenever newcomers churned the table.
        now = [0.0]
        monkeypatch.setattr(
            "repro.service.admission.time.monotonic", lambda: now[0]
        )
        controller = AdmissionController(rate_limit=1000.0)
        controller.admit("veteran", 1)  # oldest insertion
        now[0] = 10.0
        for i in range(MAX_TRACKED_CLIENTS - 1):
            controller.admit(f"newcomer-{i}", 1)
        now[0] = 20.0
        controller.admit("veteran", 1)  # recently active
        now[0] = 30.0
        controller.admit("fresh", 1)  # pushes the table over the cap
        assert len(controller._buckets) == MAX_TRACKED_CLIENTS
        # The idle newcomers pay, not the active veteran.
        assert "veteran" in controller._buckets
        assert "fresh" in controller._buckets


class TestTenantResolution:
    def test_header_wins_when_well_formed(self):
        assert resolve_tenant("acme", "10.0.0.1") == "acme"
        assert resolve_tenant("  team-7  ", "10.0.0.1") == "team-7"

    def test_missing_header_falls_back(self):
        assert resolve_tenant(None, "10.0.0.1") == "10.0.0.1"
        assert resolve_tenant(None, None) == DEFAULT_TENANT

    def test_malformed_header_degrades_to_fallback(self):
        for bad in ("", "a" * 65, "has spaces", "semi;colon", "-leading"):
            assert resolve_tenant(bad, "10.0.0.1") == "10.0.0.1"

    def test_lookup_fault_degrades_to_fallback(self):
        # The admission.tenant_lookup failpoint models a failing
        # identity backend: resolution must degrade, never error.
        plan = FaultPlan(
            0,
            [FaultRule(site="admission.tenant_lookup", action="raise", nth=1)],
        )
        activate(plan)
        try:
            assert resolve_tenant("acme", "10.0.0.1") == "10.0.0.1"
            # The fault fired once; resolution recovers after it.
            assert resolve_tenant("acme", "10.0.0.1") == "acme"
        finally:
            deactivate()


class TestTenantGates:
    def test_explicit_tenant_gets_tenant_scoped_code(self):
        controller = AdmissionController(rate_limit=1.0, rate_burst=1.0)
        controller.admit("acme", 1, explicit_tenant=True)
        with pytest.raises(TenantRateLimitedError) as exc:
            controller.admit("acme", 1, explicit_tenant=True)
        assert exc.value.code == "tenant-rate-limited"
        # Tenant-scoped refusals still answer isinstance dispatch on the
        # legacy class.
        assert isinstance(exc.value, RateLimitedError)
        assert controller.tenant_counters()["acme"]["shed"] == 1

    def test_implicit_identity_keeps_legacy_code(self):
        controller = AdmissionController(rate_limit=1.0, rate_burst=1.0)
        controller.admit("10.0.0.1", 1)
        with pytest.raises(RateLimitedError) as exc:
            controller.admit("10.0.0.1", 1)
        assert exc.value.code == "rate-limited"

    def test_suspend_sheds_and_resume_restores(self):
        controller = AdmissionController()
        controller.suspend("acme")
        with pytest.raises(TenantSuspendedError) as exc:
            controller.admit("acme", 1, explicit_tenant=True)
        assert exc.value.code == "tenant-suspended"
        assert exc.value.retry_after >= 1
        controller.admit("other", 1)  # only acme is shed
        controller.resume("acme")
        controller.admit("acme", 1)
        counters = controller.counters()
        assert counters["suspended"] == 1
        assert controller.tenant_counters()["acme"]["shed"] == 1


class TestCircuitBreaker:
    def test_failing_tenant_trips_and_stays_open(self):
        probes = []

        def probe(tenant):
            probes.append(tenant)
            return (8, 8)  # every recent job failed

        controller = AdmissionController(failure_probe=probe)
        with pytest.raises(TenantSuspendedError) as exc:
            controller.admit("sad", 1, explicit_tenant=True)
        assert exc.value.code == "tenant-suspended"
        assert exc.value.retry_after >= 1
        assert controller.counters()["breaker_trips"] == 1
        assert controller.tenant_counters()["sad"]["breaker_trips"] == 1
        # While open, requests shed without re-probing the store.
        with pytest.raises(TenantSuspendedError):
            controller.admit("sad", 1, explicit_tenant=True)
        assert probes == ["sad"]

    def test_healthy_tenant_passes(self):
        controller = AdmissionController(failure_probe=lambda t: (8, 1))
        controller.admit("fine", 1, explicit_tenant=True)

    def test_small_sample_never_trips(self):
        # A tenant's first failure must not suspend it: the breaker
        # needs BREAKER_MIN_SAMPLE finished jobs to judge.
        controller = AdmissionController(failure_probe=lambda t: (2, 2))
        controller.admit("new", 1, explicit_tenant=True)

    def test_probe_failure_fails_open(self):
        def boom(tenant):
            raise RuntimeError("store is gone")

        controller = AdmissionController(failure_probe=boom)
        controller.admit("anyone", 1, explicit_tenant=True)

    def test_resume_lifts_an_open_breaker(self):
        health = {"failed": 8}
        controller = AdmissionController(
            failure_probe=lambda t: (8, health["failed"])
        )
        with pytest.raises(TenantSuspendedError):
            controller.admit("sad", 1, explicit_tenant=True)
        health["failed"] = 0  # the tenant fixed its requests
        controller.resume("sad")
        controller.admit("sad", 1, explicit_tenant=True)
