"""Admission control: token buckets, gate ordering, counters."""

import pytest

from repro.api import (
    RateLimitedError,
    RequestTooLargeError,
    ServiceDrainingError,
)
from repro.service.admission import (
    DEFAULT_MAX_REQUEST_BYTES,
    MAX_TRACKED_CLIENTS,
    AdmissionController,
    TokenBucket,
)


class TestTokenBucket:
    def test_burst_then_refusal(self):
        bucket = TokenBucket(rate=1.0, burst=2.0, now=0.0)
        assert bucket.try_take(0.0) is None
        assert bucket.try_take(0.0) is None
        wait = bucket.try_take(0.0)
        assert wait == pytest.approx(1.0)

    def test_tokens_refill_at_rate(self):
        bucket = TokenBucket(rate=2.0, burst=2.0, now=0.0)
        bucket.try_take(0.0)
        bucket.try_take(0.0)
        assert bucket.try_take(0.0) is not None
        # Half a second at 2 tokens/s refills one token.
        assert bucket.try_take(0.5) is None

    def test_refill_never_exceeds_burst(self):
        bucket = TokenBucket(rate=10.0, burst=3.0, now=0.0)
        for _ in range(3):
            assert bucket.try_take(100.0) is None
        assert bucket.try_take(100.0) is not None


class TestAdmissionController:
    def test_default_admits_everything(self):
        controller = AdmissionController()
        for _ in range(100):
            controller.admit("10.0.0.1", 1024)
        assert controller.counters()["admitted"] == 100

    def test_draining_refuses_first(self):
        controller = AdmissionController(rate_limit=0.0001)
        controller.draining = True
        # Draining wins even over a size violation: clients get the
        # one code that tells them to go elsewhere.
        with pytest.raises(ServiceDrainingError) as exc:
            controller.admit("c", DEFAULT_MAX_REQUEST_BYTES * 10)
        assert exc.value.code == "draining"
        assert exc.value.http_status == 503
        assert controller.counters()["draining"] == 1

    def test_oversized_body_is_413(self):
        controller = AdmissionController(max_request_bytes=100)
        with pytest.raises(RequestTooLargeError) as exc:
            controller.admit("c", 101)
        assert exc.value.code == "request-too-large"
        assert exc.value.http_status == 413
        controller.admit("c", 100)  # the cap itself is admitted

    def test_rate_limit_is_per_client_with_retry_after(self):
        controller = AdmissionController(rate_limit=1.0, rate_burst=1.0)
        controller.admit("alice", 1)
        with pytest.raises(RateLimitedError) as exc:
            controller.admit("alice", 1)
        assert exc.value.code == "rate-limited"
        assert exc.value.retry_after >= 1
        # Bob has his own bucket.
        controller.admit("bob", 1)
        counters = controller.counters()
        assert counters["admitted"] == 2
        assert counters["rate_limited"] == 1

    def test_anonymous_clients_are_not_rate_limited(self):
        controller = AdmissionController(rate_limit=1.0, rate_burst=1.0)
        for _ in range(5):
            controller.admit(None, 1)

    def test_bucket_table_is_bounded(self):
        controller = AdmissionController(rate_limit=100.0)
        for i in range(MAX_TRACKED_CLIENTS + 50):
            controller.admit(f"client-{i}", 1)
        assert len(controller._buckets) == MAX_TRACKED_CLIENTS

    def test_queue_full_counter(self):
        controller = AdmissionController()
        controller.note_queue_full()
        assert controller.counters()["queue_full"] == 1
