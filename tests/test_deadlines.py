"""Deadlines and budgets, threaded request -> workspace -> solver.

The contract under test: a request carrying ``deadline_ms`` or
``budget`` either finishes in time or raises a *structured*
:class:`~repro.errors.DeadlineExceededError` (HTTP 504) whose payload
carries the partial per-pair results found before the limit -- never a
silent truncation, never a wrong answer.
"""

import time

import pytest

from repro.api import (
    AnalyzeRequest,
    Budget,
    DeadlineExceededError,
    RepairRequest,
    Workspace,
    http_status_of,
)
from repro.api.errors import error_payload
from repro.api.schema import all_schemas, validate
from repro.budget import Budget as CoreBudget
from repro.errors import BudgetExhaustedError, ValidationError
from repro.smt.formula import FormulaBuilder, big_or


def pigeonhole(n: int) -> FormulaBuilder:
    """PHP(n+1 -> n): unsatisfiable and conflict-heavy (hundreds of
    conflicts at n=6), the classic budget-exhaustion workload."""
    fb = FormulaBuilder()
    holes = {
        (i, j): fb.var(f"p_{i}_{j}")
        for i in range(n + 1)
        for j in range(n)
    }
    for i in range(n + 1):
        fb.add(big_or([holes[i, j] for j in range(n)]))
    for j in range(n):
        for i in range(n + 1):
            for k in range(i + 1, n + 1):
                fb.add(~holes[i, j] | ~holes[k, j])
    return fb


class TestBudget:
    def test_absent_fields_build_no_budget(self):
        assert Budget.start(None, None) is None
        assert Budget.start(None, {}) is None

    def test_deadline_ms_validation(self):
        with pytest.raises(ValidationError):
            Budget.start(0, None)
        with pytest.raises(ValidationError):
            Budget.start(-5, None)
        with pytest.raises(ValidationError):
            Budget.start(True, None)

    def test_budget_dict_validation(self):
        with pytest.raises(ValidationError):
            Budget.start(None, {"max_conflicts": 0})
        with pytest.raises(ValidationError):
            Budget.start(None, {"max_conflicts": True})
        with pytest.raises(ValidationError):
            Budget.start(None, {"bogus": 1})

    def test_expiry_and_exhaustion(self):
        live = Budget.start(60_000, {"max_conflicts": 10})
        assert live.expired() is None
        assert live.exhausted(9) is None
        assert live.exhausted(10) == "conflicts"
        dead = CoreBudget(deadline=time.monotonic() - 1.0)
        assert dead.expired() == "deadline"
        assert dead.exhausted(0) == "deadline"

    def test_remaining_ms(self):
        assert CoreBudget().remaining_ms() is None
        assert Budget.start(60_000, None).remaining_ms() > 0
        assert CoreBudget(deadline=time.monotonic() - 1).remaining_ms() == 0


class TestSolverBudget:
    """The solver answers ``unknown`` cooperatively -- no exception
    escapes the main loop, so warm incremental sessions stay usable."""

    def test_conflict_cap_yields_budget_exhausted(self):
        fb = pigeonhole(6)
        with pytest.raises(BudgetExhaustedError):
            fb.check(budget=CoreBudget(max_conflicts=1))

    def test_expired_deadline_yields_budget_exhausted(self):
        fb = pigeonhole(6)
        with pytest.raises(BudgetExhaustedError):
            fb.check(budget=CoreBudget(deadline=time.monotonic() - 1.0))

    def test_unbudgeted_answer_is_still_unsat(self):
        assert pigeonhole(6).check() is None

    def test_solver_survives_an_exhausted_query(self):
        """The same builder must answer correctly after exhaustion."""
        fb = FormulaBuilder()
        a, b = fb.var("a"), fb.var("b")
        fb.add(a | b)
        fb.add(~a)
        model = fb.check(budget=CoreBudget(max_conflicts=1_000_000))
        assert model is not None and model["b"] is True


class TestDeadlineExceeded:
    """The acceptance gate: a corpus request with a too-short deadline
    answers a structured 504 carrying partial per-pair results."""

    def test_analyze_returns_structured_partial(self):
        with Workspace(strategy="serial") as ws:
            with pytest.raises(DeadlineExceededError) as info:
                ws.analyze(AnalyzeRequest(benchmark="TPC-C", deadline_ms=1))
        exc = info.value
        assert http_status_of(exc) == 504
        payload = error_payload(exc)
        assert payload["error"]["code"] == "deadline-exceeded"
        partial = payload["error"]["partial"]
        assert partial["pairs_checked"] < partial["pairs_total"]
        assert isinstance(partial["pairs"], list)
        ok, why = validate(payload, all_schemas()["error"])
        assert ok, why

    def test_repair_returns_structured_partial(self):
        with Workspace(strategy="serial") as ws:
            with pytest.raises(DeadlineExceededError) as info:
                ws.repair(RepairRequest(benchmark="TPC-C", deadline_ms=1))
        partial = error_payload(info.value)["error"]["partial"]
        assert partial["pairs_total"] > 0
        assert partial["pairs_checked"] < partial["pairs_total"]

    def test_generous_deadline_changes_nothing(self):
        """A deadline nobody hits must not perturb the verdict."""
        with Workspace(strategy="serial") as ws:
            plain = ws.analyze(AnalyzeRequest(benchmark="Courseware"))
            budgeted = ws.analyze(
                AnalyzeRequest(benchmark="Courseware", deadline_ms=600_000)
            )
        assert [p.to_json() for p in budgeted.pairs] == [
            p.to_json() for p in plain.pairs
        ]

    def test_invalid_budget_is_a_validation_error(self):
        with Workspace(strategy="serial") as ws:
            with pytest.raises(ValidationError):
                ws.analyze(
                    AnalyzeRequest(benchmark="SIBench", budget={"bogus": 1})
                )


class TestWireRoundTrip:
    def test_deadline_fields_round_trip(self):
        request = AnalyzeRequest(
            benchmark="SIBench",
            deadline_ms=1500,
            budget={"max_conflicts": 9},
        )
        doc = request.to_json()
        assert doc["deadline_ms"] == 1500
        assert doc["budget"] == {"max_conflicts": 9}
        again = AnalyzeRequest.from_json(doc)
        assert again.deadline_ms == 1500
        assert again.budget == {"max_conflicts": 9}
        ok, why = validate(doc, all_schemas()["analyze_request"])
        assert ok, why

    def test_absent_fields_stay_off_the_wire(self):
        doc = AnalyzeRequest(benchmark="SIBench").to_json()
        assert "deadline_ms" not in doc and "budget" not in doc
