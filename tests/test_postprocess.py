"""Postprocessing unit tests: dead code, final merging, table dissolution."""

from repro.lang import ast, parse_program
from repro.refactor.correspondence import (
    Aggregator,
    RecordCorrespondence,
    ValueCorrespondence,
)
from repro.repair.postprocess import postprocess


def commands(program, txn):
    return list(ast.iter_db_commands(program.transaction(txn)))


class TestDeadSelectRemoval:
    def test_unused_select_removed(self):
        p = parse_program(
            "schema T { key id; field v; } txn f(k) "
            "{ x := select v from T where id = k;"
            "  update T set v = 1 where id = k; }"
        )
        out = postprocess(p)
        cmds = commands(out, "f")
        assert len(cmds) == 1
        assert isinstance(cmds[0], ast.Update)

    def test_used_select_kept(self):
        p = parse_program(
            "schema T { key id; field v; } txn f(k) "
            "{ x := select v from T where id = k;"
            "  update T set v = x.v + 1 where id = k; }"
        )
        out = postprocess(p)
        assert len(commands(out, "f")) == 2

    def test_select_used_only_in_return_kept(self):
        p = parse_program(
            "schema T { key id; field v; } txn f(k) "
            "{ x := select v from T where id = k; return x.v; }"
        )
        out = postprocess(p)
        assert len(commands(out, "f")) == 1

    def test_cascading_dead_code(self):
        # y depends on x; neither is used downstream -> both go.
        p = parse_program(
            "schema T { key id; field a; field b; } txn f(k) "
            "{ x := select a from T where id = k;"
            "  y := select b from T where a = x.a;"
            "  update T set b = 1 where id = k; }"
        )
        out = postprocess(p)
        assert len(commands(out, "f")) == 1


class TestFinalMerging:
    def test_adjacent_same_record_selects_merge(self):
        p = parse_program(
            "schema T { key id; field a; field b; } txn f(k) "
            "{ x := select a from T where id = k;"
            "  y := select b from T where id = k;"
            "  return x.a + y.b; }"
        )
        out = postprocess(p)
        cmds = commands(out, "f")
        assert len(cmds) == 1
        assert set(cmds[0].fields) == {"a", "b"}

    def test_merge_runs_to_fixpoint(self):
        p = parse_program(
            "schema T { key id; field a; field b; field c; } txn f(k) "
            "{ x := select a from T where id = k;"
            "  y := select b from T where id = k;"
            "  z := select c from T where id = k;"
            "  return x.a + y.b + z.c; }"
        )
        out = postprocess(p)
        assert len(commands(out, "f")) == 1


class TestTableDissolution:
    def _correspondence(self):
        return ValueCorrespondence(
            src_table="OLD", dst_table="NEW", src_field="v", dst_field="nv",
            theta=RecordCorrespondence("OLD", "NEW", (("id", "ref_id"),)),
            alpha=Aggregator.ANY,
        )

    def test_unreferenced_covered_table_dropped(self):
        p = parse_program(
            "schema OLD { key id; field v; }"
            "schema NEW { key nid; field ref_id ref OLD.id; field nv; }"
            "txn f(k) { x := select nv from NEW where nid = k; return x.nv; }"
        )
        out = postprocess(p, [self._correspondence()])
        assert not out.has_schema("OLD")

    def test_referenced_table_kept(self):
        p = parse_program(
            "schema OLD { key id; field v; }"
            "schema NEW { key nid; field ref_id ref OLD.id; field nv; }"
            "txn f(k) { x := select v from OLD where id = k; return x.v; }"
        )
        out = postprocess(p, [self._correspondence()])
        assert out.has_schema("OLD")

    def test_uncovered_table_kept(self):
        # OLD has a field (w) with no correspondence: dropping would lose data.
        p = parse_program(
            "schema OLD { key id; field v; field w; }"
            "schema NEW { key nid; field ref_id ref OLD.id; field nv; }"
            "txn f(k) { x := select nv from NEW where nid = k; return x.nv; }"
        )
        out = postprocess(p, [self._correspondence()])
        assert out.has_schema("OLD")

    def test_dangling_refs_scrubbed(self):
        p = parse_program(
            "schema OLD { key id; field v; }"
            "schema NEW { key nid; field ref_id ref OLD.id; field nv; }"
            "txn f(k) { x := select nv from NEW where nid = k; return x.nv; }"
        )
        out = postprocess(p, [self._correspondence()])
        assert "ref_id" in out.schema("NEW").fields
        assert "ref_id" not in out.schema("NEW").ref_map

    def test_clean_program_is_fixpoint(self, courseware):
        from repro.lang import print_program
        from repro.repair import repair

        report = repair(courseware)
        again = postprocess(report.repaired_program, report.correspondences)
        assert print_program(again) == print_program(report.repaired_program)
