"""The chaos gate: seeded fault injection across solver, cache, store,
and service, with the durability invariants checked after every run.

``CHAOS_SEED`` (env) adds one extra seed to the matrix -- CI's
chaos-smoke job passes a fresh random seed per run so the fixed seeds
guard against regression while the random one keeps exploring.  On a
violation the full report (rules + fired-fault schedule) is written to
``CHAOS_ARTIFACT`` when set, so a red CI run uploads the exact failure
history needed to replay it.
"""

import json
import os
import sqlite3

import pytest

from repro import faults
from repro.faults import FaultInjected, FaultPlan, FaultRule
from repro.service import (
    ReproService,
    default_plan,
    run_chaos,
    run_tenant_isolation,
)

FIXED_SEEDS = [0, 7, 42]


def _seeds():
    seeds = list(FIXED_SEEDS)
    extra = os.environ.get("CHAOS_SEED")
    if extra is not None:
        seeds.append(int(extra))
    return seeds


def _save_artifact(report):
    path = os.environ.get("CHAOS_ARTIFACT")
    if path:
        with open(path, "a") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")


class TestFaultPlan:
    """The injection machinery itself, before anything is built on it."""

    def test_failpoints_are_noops_without_a_plan(self):
        assert faults.active_plan() is None
        faults.failpoint("jobstore.claim")  # must not raise
        assert faults.failpoint_bytes("cache.read", b"abc") == b"abc"

    def test_nth_trigger_is_exact(self):
        plan = FaultPlan(0, [FaultRule(site="s", action="raise", nth=3)])
        faults.activate(plan)
        try:
            faults.failpoint("s")
            faults.failpoint("s")
            with pytest.raises(FaultInjected):
                faults.failpoint("s")
            faults.failpoint("s")  # times=1: never fires again
        finally:
            faults.deactivate()
        assert [e["hit"] for e in plan.schedule] == [3]

    def test_busy_action_raises_sqlite_locked(self):
        plan = FaultPlan(0, [FaultRule(site="s", action="busy", nth=1)])
        faults.activate(plan)
        try:
            with pytest.raises(sqlite3.OperationalError, match="locked"):
                faults.failpoint("s")
        finally:
            faults.deactivate()

    def test_corrupt_action_flips_bytes(self):
        plan = FaultPlan(5, [FaultRule(site="b", action="corrupt", nth=1)])
        faults.activate(plan)
        try:
            corrupted = faults.failpoint_bytes("b", b"payload")
        finally:
            faults.deactivate()
        assert corrupted != b"payload"
        assert len(corrupted) == len(b"payload")

    def test_crash_degrades_to_raise_in_process(self):
        """An in-process plan must never take the host down."""
        plan = FaultPlan(0, [FaultRule(site="s", action="crash", nth=1)])
        faults.activate(plan, allow_crash=False)
        try:
            with pytest.raises(FaultInjected):
                faults.failpoint("s")
        finally:
            faults.deactivate()

    def test_gate_file_suppresses_refiring(self, tmp_path):
        gate = str(tmp_path / "fired")
        rule = FaultRule(site="s", action="raise", nth=1, gate=gate)
        plan = FaultPlan(0, [rule])
        faults.activate(plan)
        try:
            with pytest.raises(FaultInjected):
                faults.failpoint("s")
            assert os.path.exists(gate), "firing must create the gate"
            # A fresh plan (a respawned worker) sees the gate and skips.
            fresh = FaultPlan(
                0, [FaultRule(site="s", action="raise", nth=1, gate=gate)]
            )
            faults.activate(fresh)
            faults.failpoint("s")  # must not raise
        finally:
            faults.deactivate()

    def test_spec_round_trip_and_env_install(self, monkeypatch):
        plan = default_plan(11)
        spec = plan.to_spec()
        again = FaultPlan.from_spec(spec)
        assert again.to_spec() == spec
        monkeypatch.setenv(faults.ENV_VAR, spec)
        installed = faults.install_from_env(allow_crash=False)
        try:
            assert installed is not None
            assert installed.to_spec() == spec
        finally:
            faults.deactivate()

    def test_same_seed_same_plan(self):
        assert default_plan(123).to_spec() == default_plan(123).to_spec()
        assert default_plan(1).to_spec() != default_plan(2).to_spec()


class TestChaosGate:
    """The acceptance gate: under a seeded fault schedule, no job is
    lost or duplicated, every job lands terminal, and every completed
    result matches the fault-free baseline."""

    @pytest.mark.parametrize("seed", _seeds())
    def test_inline_service_survives_faults(self, seed):
        report = run_chaos(seed=seed, jobs=4, workers=0, timeout=240.0)
        if not report["ok"]:
            _save_artifact(report)
        assert report["ok"], report["violations"]
        assert report["cancel_status"] in ("cancelled", "done")
        statuses = set(report["statuses"].values())
        assert statuses <= {"done", "failed", "cancelled"}

    def test_worker_crash_mid_job_is_survived(self, tmp_path):
        """A real worker process killed between computing a result and
        persisting it: the pool respawns, the store re-enqueues, the
        job still completes with the correct result.  The gate file
        makes the crash fire exactly once across process generations."""
        gate = str(tmp_path / "crash-once")
        plan = FaultPlan(
            0,
            [
                FaultRule(
                    site="worker.pre_result", action="crash", nth=1,
                    gate=gate,
                )
            ],
        )
        report = run_chaos(
            seed=0, jobs=2, workers=1, plan=plan, timeout=240.0
        )
        if not report["ok"]:
            _save_artifact(report)
        assert report["ok"], report["violations"]
        assert os.path.exists(gate), "the crash rule must have fired"


class TestTenantLookupFaults:
    """The ``admission.tenant_lookup`` failpoint models a flaky
    identity backend.  A fault there must degrade the request to the
    address-keyed default identity -- the job is still accepted and
    still lands in the store -- never surface as an error."""

    def test_lookup_fault_degrades_to_address_identity(self, tmp_path):
        plan = FaultPlan(
            0,
            [
                FaultRule(
                    site="admission.tenant_lookup", action="raise", nth=1
                )
            ],
        )
        service = ReproService(
            job_db=str(tmp_path / "jobs.sqlite"), start_runner=False
        )
        body = json.dumps(
            {"version": 1, "kind": "analyze_request", "benchmark": "SIBench"}
        ).encode()
        faults.activate(plan)
        try:
            # Fault fires on the first request: accepted, but keyed by
            # the client address instead of the header.
            status, job, _ = service.handle(
                "POST", "/v1/jobs", body,
                client="10.1.1.1", tenant_header="acme",
            )
            assert status == 202
            assert job["tenant"] == "10.1.1.1"
            # The backend recovered: the header counts again.
            status, job, _ = service.handle(
                "POST", "/v1/jobs", body,
                client="10.1.1.1", tenant_header="acme",
            )
            assert status == 202
            assert job["tenant"] == "acme"
        finally:
            faults.deactivate()
            service.close()

    def test_lookup_delay_fault_only_slows_the_request(self, tmp_path):
        plan = FaultPlan(
            0,
            [
                FaultRule(
                    site="admission.tenant_lookup", action="delay", nth=1,
                    delay_s=0.02,
                )
            ],
        )
        service = ReproService(
            job_db=str(tmp_path / "jobs.sqlite"), start_runner=False
        )
        body = json.dumps(
            {"version": 1, "kind": "analyze_request", "benchmark": "SIBench"}
        ).encode()
        faults.activate(plan)
        try:
            status, job, _ = service.handle(
                "POST", "/v1/jobs", body,
                client="10.1.1.1", tenant_header="acme",
            )
            assert status == 202
            assert job["tenant"] == "acme"
        finally:
            faults.deactivate()
            service.close()


class TestTenantIsolationGate:
    """The two-tenant fairness acceptance gate: a flooding aggressor
    must not starve a trickling victim.  Every victim job completes and
    its p99 stays within the 3x-solo bound computed by the scenario."""

    @pytest.mark.parametrize("seed", _seeds())
    def test_victim_latency_survives_aggressor_flood(self, seed):
        report = run_tenant_isolation(
            seed=seed, aggressor_jobs=8, victim_jobs=2, workers=0,
            timeout=240.0,
        )
        if not report["ok"]:
            _save_artifact(report)
        assert report["ok"], report["violations"]
        assert report["victim_completed"] == 2
        assert report["contended_p99_s"] <= report["threshold_s"]
