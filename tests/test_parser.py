"""Parser unit tests: grammar coverage and error reporting."""

import pytest

from repro.errors import ParseError, ValidationError
from repro.lang import ast, parse_expression, parse_program, parse_where


class TestSchemas:
    def test_single_schema(self):
        p = parse_program("schema T { key id; field v; } ")
        assert p.schema("T").fields == ("id", "v")
        assert p.schema("T").key == ("id",)

    def test_composite_key(self):
        p = parse_program("schema T { key a; key b; field v; }")
        assert p.schema("T").key == ("a", "b")

    def test_field_ref(self):
        p = parse_program(
            "schema A { key a_id; } schema B { key b_id; field b_a ref A.a_id; }"
        )
        assert p.schema("B").ref_map["b_a"] == ("A", "a_id")

    def test_key_ref(self):
        p = parse_program(
            "schema A { key a_id; } schema B { key b_id ref A.a_id; field v; }"
        )
        assert p.schema("B").ref_map["b_id"] == ("A", "a_id")

    def test_missing_semicolon_raises(self):
        with pytest.raises(ParseError):
            parse_program("schema T { key id field v; }")


class TestTransactions:
    def test_params(self):
        p = parse_program("schema T { key id; } txn f(a, b, c) { skip; }")
        assert p.transaction("f").params == ("a", "b", "c")

    def test_no_params(self):
        p = parse_program("schema T { key id; } txn f() { skip; }")
        assert p.transaction("f").params == ()

    def test_serializable_marker(self):
        p = parse_program("schema T { key id; } serializable txn f() { skip; }")
        assert p.transaction("f").serializable

    def test_return_expression(self):
        p = parse_program(
            "schema T { key id; field v; }"
            "txn f(k) { x := select v from T where id = k; return x.v; }"
        )
        assert isinstance(p.transaction("f").ret, ast.At)

    def test_return_must_be_last(self):
        with pytest.raises(ParseError):
            parse_program(
                "schema T { key id; } txn f() { return 1; skip; }"
            )


class TestCommands:
    def test_select_star(self):
        p = parse_program(
            "schema T { key id; field v; } txn f(k) "
            "{ x := select * from T where id = k; }"
        )
        cmd = p.transaction("f").body[0]
        assert cmd.fields == ast.STAR

    def test_select_field_list(self):
        p = parse_program(
            "schema T { key id; field a; field b; } txn f(k) "
            "{ x := select a, b from T where id = k; }"
        )
        assert p.transaction("f").body[0].fields == ("a", "b")

    def test_update_multiple_assignments(self):
        p = parse_program(
            "schema T { key id; field a; field b; } txn f(k) "
            "{ update T set a = 1, b = 2 where id = k; }"
        )
        cmd = p.transaction("f").body[0]
        assert cmd.written_fields == ("a", "b")

    def test_insert(self):
        p = parse_program(
            "schema T { key id; field v; } txn f(k) "
            "{ insert into T values (id = k, v = 0); }"
        )
        cmd = p.transaction("f").body[0]
        assert isinstance(cmd, ast.Insert)
        assert cmd.written_fields == ("id", "v")

    def test_insert_with_uuid(self):
        p = parse_program(
            "schema T { key id; field v; } txn f() "
            "{ insert into T values (id = uuid(), v = 1); }"
        )
        assignments = dict(p.transaction("f").body[0].assignments)
        assert isinstance(assignments["id"], ast.Uuid)

    def test_if_block(self):
        p = parse_program(
            "schema T { key id; field v; } txn f(k) "
            "{ if (k > 0) { update T set v = 1 where id = k; } }"
        )
        cmd = p.transaction("f").body[0]
        assert isinstance(cmd, ast.If)
        assert len(cmd.body) == 1

    def test_iterate_block(self):
        p = parse_program(
            "schema T { key id; field v; } txn f(k) "
            "{ iterate (3) { update T set v = iter where id = k; } }"
        )
        cmd = p.transaction("f").body[0]
        assert isinstance(cmd, ast.Iterate)
        assert cmd.count == ast.Const(3)

    def test_skip(self):
        p = parse_program("schema T { key id; } txn f() { skip; }")
        assert isinstance(p.transaction("f").body[0], ast.Skip)


class TestLabels:
    def test_selects_labelled_in_order(self, courseware):
        labels = [c.label for c in ast.iter_db_commands(courseware.transaction("getSt"))]
        assert labels == ["S1", "S2", "S3"]

    def test_mixed_labels(self, courseware):
        labels = [c.label for c in ast.iter_db_commands(courseware.transaction("regSt"))]
        assert labels == ["U1", "S1", "U2"]

    def test_labels_reach_into_branches(self):
        p = parse_program(
            "schema T { key id; field v; } txn f(k) "
            "{ x := select v from T where id = k;"
            "  if (x.v > 0) { update T set v = 0 where id = k; } }"
        )
        labels = [c.label for c in ast.iter_db_commands(p.transaction("f"))]
        assert labels == ["S1", "U1"]


class TestWhereClauses:
    def test_conjunction(self):
        w = parse_where("a = 1 and b = 2")
        assert isinstance(w, ast.WhereBool)
        assert w.op == "and"

    def test_conjunction_binds_correctly(self):
        w = parse_where("a = x and b = y")
        conjuncts = ast.where_conjuncts(w)
        assert conjuncts is not None
        assert [c.field for c in conjuncts] == ["a", "b"]

    def test_disjunction(self):
        w = parse_where("a = 1 or b = 2")
        assert isinstance(w, ast.WhereBool)
        assert w.op == "or"
        assert ast.where_conjuncts(w) is None

    def test_true_clause(self):
        assert isinstance(parse_where("true"), ast.WhereTrue)

    def test_this_prefix(self):
        w = parse_where("this.a = 1")
        assert isinstance(w, ast.WhereCond)
        assert w.field == "a"

    def test_arithmetic_rhs(self):
        w = parse_where("a = x + 1")
        assert isinstance(w.expr, ast.BinOp)

    def test_parenthesised(self):
        w = parse_where("(a = 1 or b = 2) and c = 3")
        assert isinstance(w, ast.WhereBool)
        assert w.op == "and"


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expression("1 + 2 * 3")
        assert isinstance(e, ast.BinOp)
        assert e.op == "+"
        assert isinstance(e.right, ast.BinOp)

    def test_parentheses_override(self):
        e = parse_expression("(1 + 2) * 3")
        assert e.op == "*"

    def test_comparison(self):
        e = parse_expression("a + 1 >= b")
        assert isinstance(e, ast.Cmp)
        assert e.op == ">="

    def test_bool_ops(self):
        e = parse_expression("a > 1 and b < 2 or c = 3")
        assert isinstance(e, ast.BoolOp)
        assert e.op == "or"

    def test_not(self):
        e = parse_expression("not a")
        assert isinstance(e, ast.Not)

    def test_field_access_sugar(self):
        e = parse_expression("x.f")
        assert e == ast.At(ast.Const(1), "x", "f")

    def test_at_explicit(self):
        e = parse_expression("at(2, x.f)")
        assert e == ast.At(ast.Const(2), "x", "f")

    def test_aggregators(self):
        for func in ("sum", "min", "max", "count", "any"):
            e = parse_expression(f"{func}(x.f)")
            assert e == ast.Agg(func, "x", "f")

    def test_unary_minus(self):
        e = parse_expression("-x")
        assert e == ast.BinOp("-", ast.Const(0), ast.Arg("x"))

    def test_iter(self):
        assert parse_expression("iter") == ast.IterVar()

    def test_booleans(self):
        assert parse_expression("true") == ast.Const(True)
        assert parse_expression("false") == ast.Const(False)

    def test_string_literal(self):
        assert parse_expression("'abc'") == ast.Const("abc")


class TestErrors:
    def test_unknown_toplevel(self):
        with pytest.raises(ParseError):
            parse_program("select * from T;")

    def test_error_reports_position(self):
        with pytest.raises(ParseError) as exc:
            parse_program("schema T { key id; }\ntxn f( { }")
        assert exc.value.line == 2

    def test_validation_runs_by_default(self):
        with pytest.raises(ValidationError):
            parse_program(
                "schema T { key id; } txn f(k) "
                "{ x := select v from T where id = k; }"
            )

    def test_validation_can_be_skipped(self):
        p = parse_program(
            "schema T { key id; } txn f(k) "
            "{ x := select nope from T where id = k; }",
            validate=False,
        )
        assert p.transaction("f") is not None
