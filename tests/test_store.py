"""Store simulator tests: event loop, network, replicas, closed loop."""

import pytest

from repro.errors import SimulationError
from repro.store import (
    CLUSTERS,
    GLOBAL_CLUSTER,
    PerfConfig,
    US_CLUSTER,
    VA_CLUSTER,
    profile_program,
    simulate,
)
from repro.store.network import ClusterSpec
from repro.store.profile import OpProfile, sample_calls_for
from repro.store.replica import Replica
from repro.store.sim import EventLoop


class TestEventLoop:
    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule(5.0, lambda t: fired.append(("b", t)))
        loop.schedule(1.0, lambda t: fired.append(("a", t)))
        loop.run_until(10.0)
        assert fired == [("a", 1.0), ("b", 5.0)]

    def test_ties_fire_in_insertion_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda t: fired.append("first"))
        loop.schedule(1.0, lambda t: fired.append("second"))
        loop.run_until(2.0)
        assert fired == ["first", "second"]

    def test_deadline_cuts_off(self):
        loop = EventLoop()
        fired = []
        loop.schedule(5.0, lambda t: fired.append(t))
        loop.run_until(3.0)
        assert fired == []
        assert len(loop) == 1

    def test_callbacks_can_reschedule(self):
        loop = EventLoop()
        fired = []

        def tick(t):
            fired.append(t)
            if t < 3:
                loop.schedule(t + 1, tick)

        loop.schedule(0.0, tick)
        loop.run_until(10.0)
        assert fired == [0.0, 1.0, 2.0, 3.0]

    def test_past_events_clamped_to_now(self):
        loop = EventLoop()
        fired = []
        loop.schedule(2.0, lambda t: loop.schedule(1.0, lambda u: fired.append(u)))
        loop.run_until(5.0)
        assert fired == [2.0]


class TestClusterSpecs:
    def test_presets_exist(self):
        assert set(CLUSTERS) == {"VA", "US", "Global"}

    def test_rtt_symmetry_enforced(self):
        with pytest.raises(SimulationError):
            ClusterSpec(
                name="bad",
                regions=("a", "b"),
                rtt_ms=((0.0, 1.0), (2.0, 0.0)),
            )

    def test_majority_commit_is_nearest_peer(self):
        assert US_CLUSTER.majority_commit_ms() == 12.0
        assert GLOBAL_CLUSTER.majority_commit_ms() == 76.0
        assert VA_CLUSTER.majority_commit_ms() == pytest.approx(0.6)

    def test_cluster_ordering_by_latency(self):
        assert (
            VA_CLUSTER.majority_commit_ms()
            < US_CLUSTER.majority_commit_ms()
            < GLOBAL_CLUSTER.majority_commit_ms()
        )


class TestReplica:
    def test_idle_replica_serves_immediately(self):
        r = Replica(0)
        assert r.serve(arrival=10.0, service_ms=2.0) == 12.0

    def test_busy_replica_queues(self):
        r = Replica(0)
        r.serve(0.0, 5.0)
        assert r.serve(1.0, 5.0) == 10.0

    def test_ops_counted(self):
        r = Replica(0)
        r.serve(0.0, 1.0)
        r.serve(0.0, 1.0)
        assert r.ops_served == 2


def _profiles():
    return {
        "read": OpProfile(txn="read", ops=(("r", "T"),), serializable=False),
        "write": OpProfile(
            txn="write", ops=(("r", "T"), ("w", "T")), serializable=False
        ),
    }


MIX = [("read", 50.0), ("write", 50.0)]


class TestSimulate:
    def test_throughput_positive(self):
        result = simulate(_profiles(), MIX, US_CLUSTER, clients=4,
                          config=PerfConfig(duration_ms=2000, warmup_ms=200))
        assert result.throughput > 0
        assert result.avg_latency_ms > 0

    def test_sc_slower_than_ec(self):
        cfg = PerfConfig(duration_ms=2000, warmup_ms=200)
        ec = simulate(_profiles(), MIX, US_CLUSTER, 8, cfg)
        sc = simulate(_profiles(), MIX, US_CLUSTER, 8, cfg, serialize_all=True)
        assert sc.avg_latency_ms > ec.avg_latency_ms
        assert sc.throughput < ec.throughput

    def test_latency_grows_with_clients(self):
        cfg = PerfConfig(duration_ms=2000, warmup_ms=200)
        small = simulate(_profiles(), MIX, US_CLUSTER, 2, cfg)
        large = simulate(_profiles(), MIX, US_CLUSTER, 128, cfg)
        assert large.avg_latency_ms >= small.avg_latency_ms

    def test_throughput_saturates(self):
        cfg = PerfConfig(duration_ms=2000, warmup_ms=200)
        mid = simulate(_profiles(), MIX, US_CLUSTER, 64, cfg)
        big = simulate(_profiles(), MIX, US_CLUSTER, 256, cfg)
        # Within 25% of each other once saturated.
        assert big.throughput <= mid.throughput * 1.25

    def test_global_cluster_slower_under_sc(self):
        cfg = PerfConfig(duration_ms=2000, warmup_ms=200)
        us = simulate(_profiles(), MIX, US_CLUSTER, 8, cfg, serialize_all=True)
        gl = simulate(_profiles(), MIX, GLOBAL_CLUSTER, 8, cfg, serialize_all=True)
        assert gl.avg_latency_ms > us.avg_latency_ms

    def test_deterministic_given_seed(self):
        cfg = PerfConfig(duration_ms=1000, warmup_ms=100, seed=9)
        a = simulate(_profiles(), MIX, US_CLUSTER, 4, cfg)
        b = simulate(_profiles(), MIX, US_CLUSTER, 4, cfg)
        assert a.throughput == b.throughput
        assert a.latencies_ms == b.latencies_ms

    def test_zero_clients_rejected(self):
        with pytest.raises(SimulationError):
            simulate(_profiles(), MIX, US_CLUSTER, 0)

    def test_unknown_mix_name_rejected(self):
        with pytest.raises(SimulationError):
            simulate(_profiles(), [("nope", 1.0)], US_CLUSTER, 1)

    def test_percentile_latency(self):
        cfg = PerfConfig(duration_ms=1000, warmup_ms=100)
        result = simulate(_profiles(), MIX, US_CLUSTER, 4, cfg)
        assert result.percentile_latency_ms(0.95) >= result.percentile_latency_ms(0.5)


class TestPerfResultEdges:
    def test_empty_sample_answers_zero(self):
        from repro.store.runner import PerfResult

        result = PerfResult(clients=1, committed=0, duration_s=1.0)
        assert result.percentile_latency_ms(0.5) == 0.0
        assert result.avg_latency_ms == 0.0

    def test_singleton_sample_answers_every_quantile(self):
        from repro.store.runner import PerfResult

        result = PerfResult(
            clients=1, committed=1, duration_s=1.0, latencies_ms=[7.5]
        )
        for q in (0.0, 0.5, 0.95, 1.0):
            assert result.percentile_latency_ms(q) == 7.5

    def test_q0_is_min_and_q1_is_max(self):
        from repro.store.runner import PerfResult

        result = PerfResult(
            clients=1,
            committed=4,
            duration_s=1.0,
            latencies_ms=[4.0, 1.0, 3.0, 2.0],
        )
        assert result.percentile_latency_ms(0.0) == 1.0
        assert result.percentile_latency_ms(1.0) == 4.0
        # Nearest rank: the smallest sample covering half the data.
        assert result.percentile_latency_ms(0.5) == 2.0

    def test_out_of_range_quantile_rejected(self):
        from repro.store.runner import PerfResult

        result = PerfResult(
            clients=1, committed=1, duration_s=1.0, latencies_ms=[1.0]
        )
        for q in (-0.1, 1.1):
            with pytest.raises(SimulationError):
                result.percentile_latency_ms(q)

    def test_zero_duration_throughput_is_zero(self):
        from repro.store.runner import PerfResult

        assert PerfResult(clients=1, committed=5, duration_s=0.0).throughput == 0.0
        assert (
            PerfResult(clients=1, committed=5, duration_s=-1.0).throughput == 0.0
        )


class TestOpRewriter:
    def _rewriter(self, extra_ms=0.0, commit_extra_ms=0.0):
        from repro.store.runner import OpRewriter

        class _Pad(OpRewriter):
            def rewrite(self, profile):
                ops = tuple((k, t, extra_ms) for (k, t) in profile.ops)
                return ops, commit_extra_ms

        return _Pad()

    def test_identity_rewriter_changes_nothing(self):
        cfg = PerfConfig(duration_ms=1000, warmup_ms=100, seed=3)
        plain = simulate(_profiles(), MIX, US_CLUSTER, 4, cfg)
        hooked = simulate(
            _profiles(), MIX, US_CLUSTER, 4, cfg, rewriter=self._rewriter()
        )
        assert plain.throughput == hooked.throughput
        assert plain.latencies_ms == hooked.latencies_ms

    def test_rewrite_overhead_slows_the_store(self):
        cfg = PerfConfig(duration_ms=1000, warmup_ms=100, seed=3)
        plain = simulate(_profiles(), MIX, US_CLUSTER, 4, cfg)
        padded = simulate(
            _profiles(),
            MIX,
            US_CLUSTER,
            4,
            cfg,
            rewriter=self._rewriter(extra_ms=2.0, commit_extra_ms=1.0),
        )
        assert padded.avg_latency_ms > plain.avg_latency_ms
        assert padded.throughput < plain.throughput

    def test_deterministic_given_seed(self):
        cfg = PerfConfig(duration_ms=1000, warmup_ms=100, seed=9)
        rewriter = self._rewriter(extra_ms=0.5, commit_extra_ms=0.2)
        a = simulate(_profiles(), MIX, US_CLUSTER, 4, cfg, rewriter=rewriter)
        b = simulate(_profiles(), MIX, US_CLUSTER, 4, cfg, rewriter=rewriter)
        assert a.throughput == b.throughput
        assert a.latencies_ms == b.latencies_ms


class TestProfiles:
    def test_profile_counts_commands(self, account_program, account_db):
        from repro.semantics import TxnCall

        profiles = profile_program(
            account_program,
            account_db,
            {
                "deposit": TxnCall("deposit", (1, 5)),
                "read_bal": TxnCall("read_bal", (1,)),
                "rename": TxnCall("rename", (1, "x")),
            },
        )
        assert profiles["deposit"].reads == 1
        assert profiles["deposit"].writes == 1
        assert profiles["read_bal"].writes == 0

    def test_refactored_program_has_fewer_ops(self):
        """The repaired courseware getSt runs 1 op instead of 3."""
        import random

        from repro.corpus import COURSEWARE
        from repro.refactor.migrate import migrate_database
        from repro.repair import repair

        program = COURSEWARE.program()
        report = repair(program)
        rng = random.Random(0)
        calls = sample_calls_for(COURSEWARE, rng, 8)
        db = COURSEWARE.database(8)
        before = profile_program(program, db, calls)
        at_db = migrate_database(db, report.repaired_program, report.rewrites)
        after = profile_program(report.repaired_program, at_db, calls)
        assert len(after["getSt"].ops) < len(before["getSt"].ops)
        assert len(after["setSt"].ops) < len(before["setSt"].ops)
