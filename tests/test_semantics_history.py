"""History checking: strong atomicity/isolation and the DSG test."""

import random


from repro.lang import parse_program
from repro.semantics import (
    Database,
    TxnCall,
    check_strong_atomicity,
    check_strong_isolation,
    is_serializable,
    run_interleaved,
    run_serial,
)
from repro.semantics.views import RandomPartialView, ScriptedView

RMW_SRC = """
schema T { key id; field v; }
txn incr(k) {
  x := select v from T where id = k;
  update T set v = x.v + 1 where id = k;
}
txn reader(k) {
  x := select v from T where id = k;
  return x.v;
}
"""


def _setup():
    p = parse_program(RMW_SRC)
    db = Database(p)
    db.insert("T", id=1, v=0)
    return p, db


class TestSerialHistories:
    def test_serial_is_strongly_atomic(self):
        p, db = _setup()
        h = run_serial(p, db, [TxnCall("incr", (1,)), TxnCall("incr", (1,))])
        assert check_strong_atomicity(h) is None

    def test_serial_is_strongly_isolated(self):
        p, db = _setup()
        h = run_serial(p, db, [TxnCall("incr", (1,)), TxnCall("reader", (1,))])
        assert check_strong_isolation(h) is None

    def test_serial_is_serializable(self):
        p, db = _setup()
        h = run_serial(p, db, [TxnCall("incr", (1,)), TxnCall("incr", (1,))])
        assert is_serializable(h)
        assert h.state.materialize()["T"][(1,)]["v"] == 2


class TestLostUpdate:
    def _lost_update_history(self):
        p, db = _setup()
        # Both increments read before either write; neither sees the other.
        return run_interleaved(
            p, db,
            [TxnCall("incr", (1,)), TxnCall("incr", (1,))],
            schedule=[0, 1, 0, 1],
            policy=ScriptedView([frozenset()] * 4),
        )

    def test_final_state_loses_one_update(self):
        h = self._lost_update_history()
        assert h.state.materialize()["T"][(1,)]["v"] == 1

    def test_not_serializable(self):
        assert not is_serializable(self._lost_update_history())

    def test_violates_strong_atomicity(self):
        assert check_strong_atomicity(self._lost_update_history()) is not None


class TestFracturedRead:
    SRC = """
    schema A { key id; field x; }
    schema B { key id; field y; }
    txn writer(k) {
      update A set x = 1 where id = k;
      update B set y = 1 where id = k;
    }
    txn observer(k) {
      a := select x from A where id = k;
      b := select y from B where id = k;
      return a.x - b.y;
    }
    """

    def _run(self, script):
        p = parse_program(self.SRC)
        db = Database(p)
        db.insert("A", id=1, x=0)
        db.insert("B", id=1, y=0)
        return run_interleaved(
            p, db,
            [TxnCall("writer", (1,)), TxnCall("observer", (1,))],
            schedule=[0, 0, 1, 1],
            policy=ScriptedView(script),
        )

    def test_fractured_observation_nonserializable(self):
        # Observer sees the write to A but not the write to B.
        script = [
            frozenset(),                 # writer U1
            frozenset(),                 # writer U2
            frozenset({(0, "U1")}),      # observer S1 sees U1
            frozenset(),                 # observer S2 sees nothing
        ]
        h = self._run(script)
        assert h.results[1] == 1  # saw x=1, y=0
        assert not is_serializable(h)

    def test_consistent_observation_serializable(self):
        script = [
            frozenset(),
            frozenset(),
            frozenset({(0, "U1")}),
            frozenset({(0, "U1"), (0, "U2")}),
        ]
        h = self._run(script)
        assert h.results[1] == 0
        assert is_serializable(h)


class TestRandomPartialView:
    def test_full_probability_equals_serial_result(self):
        p, db = _setup()
        h = run_interleaved(
            p, db,
            [TxnCall("incr", (1,)), TxnCall("incr", (1,))],
            schedule=[0, 0, 1, 1],
            policy=RandomPartialView(random.Random(0), p_visible=1.0),
        )
        assert h.state.materialize()["T"][(1,)]["v"] == 2
        assert is_serializable(h)

    def test_zero_probability_loses_updates(self):
        p, db = _setup()
        h = run_interleaved(
            p, db,
            [TxnCall("incr", (1,)), TxnCall("incr", (1,))],
            schedule=[0, 0, 1, 1],
            policy=RandomPartialView(random.Random(0), p_visible=0.0),
        )
        assert h.state.materialize()["T"][(1,)]["v"] == 1

    def test_read_your_writes_holds(self):
        p, db = _setup()
        h = run_interleaved(
            p, db,
            [TxnCall("incr", (1,))],
            schedule=[0, 0],
            policy=RandomPartialView(random.Random(0), p_visible=0.0),
        )
        # The single transaction still sees its own effects.
        assert h.state.materialize()["T"][(1,)]["v"] == 1


class TestAtomicityClosure:
    def test_views_closed_under_record_atomicity(self):
        src = """
        schema T { key id; field a; field b; }
        txn w(k) { update T set a = 1, b = 2 where id = k; }
        txn r(k) { x := select a, b from T where id = k; return x.a + x.b; }
        """
        p = parse_program(src)
        db = Database(p)
        db.insert("T", id=1, a=0, b=0)
        # Script asks for the writer's atom; closure must deliver both
        # field writes together (they share a command and a record).
        h = run_interleaved(
            p, db,
            [TxnCall("w", (1,)), TxnCall("r", (1,))],
            schedule=[0, 1],
            policy=ScriptedView([frozenset(), frozenset({(0, "U1")})]),
        )
        assert h.results[1] in (0, 3)  # never 1 or 2: no partial row
