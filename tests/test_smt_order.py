"""Total-order theory tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt.formula import FormulaBuilder, Not, evaluate
from repro.smt.order import TotalOrder


class TestAxioms:
    def test_chain_is_satisfiable(self):
        fb = FormulaBuilder()
        order = TotalOrder(fb, ["a", "b", "c"])
        order.require([("a", "b"), ("b", "c")])
        model = fb.check()
        assert model is not None
        assert order.extract(model) == ["a", "b", "c"]

    def test_cycle_is_unsat(self):
        fb = FormulaBuilder()
        order = TotalOrder(fb, ["a", "b", "c"])
        order.require([("a", "b"), ("b", "c"), ("c", "a")])
        assert fb.check() is None

    def test_two_element_antisymmetry(self):
        fb = FormulaBuilder()
        order = TotalOrder(fb, ["x", "y"])
        fb.add(order.before("x", "y"))
        fb.add(order.before("y", "x"))
        assert fb.check() is None

    def test_totality(self):
        fb = FormulaBuilder()
        order = TotalOrder(fb, ["x", "y"])
        fb.add(Not(order.before("x", "y")))
        model = fb.check()
        assert model is not None
        assert evaluate(order.before("y", "x"), model)

    def test_duplicate_elements_rejected(self):
        fb = FormulaBuilder()
        with pytest.raises(ValueError):
            TotalOrder(fb, ["a", "a"])

    def test_self_ordering_rejected(self):
        fb = FormulaBuilder()
        order = TotalOrder(fb, ["a", "b"])
        with pytest.raises(ValueError):
            order.before("a", "a")


class TestExtraction:
    @given(st.permutations(["a", "b", "c", "d", "e"]))
    @settings(max_examples=40, deadline=None)
    def test_any_permutation_expressible(self, perm):
        fb = FormulaBuilder()
        order = TotalOrder(fb, ["a", "b", "c", "d", "e"])
        order.require(list(zip(perm, perm[1:])))
        model = fb.check()
        assert model is not None
        assert order.extract(model) == list(perm)

    def test_transitivity_derived(self):
        fb = FormulaBuilder()
        order = TotalOrder(fb, list("abcd"))
        order.require([("a", "b"), ("b", "c"), ("c", "d")])
        model = fb.check()
        assert model is not None
        assert evaluate(order.before("a", "d"), model)
