"""Smoke tests for the examples/ walkthroughs.

Each example is the public-API tour a new user follows; executing them
against the current tree (and, since PR 5, the repro.api façade they
now demonstrate) keeps the tour from rotting.  `perf_study.py` is
excluded -- it is a minutes-long simulation sweep, not an API tour.
"""

import os
import subprocess
import sys

import pytest

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

EXAMPLES = {
    "quickstart.py": ("== repaired program ==", "repro.api agrees"),
    "courseware_repair.py": (
        "== refactored program (matches the paper's Figure 3) ==",
        "containment violations : 0",
    ),
    "smallbank_study.py": (
        "AT-SC pins these transactions to serializable execution",
        "dynamic invariant study",
    ),
    "custom_benchmark.py": ("deployment comparison", "facade agrees"),
    "live_protection.py": (
        "== live-vs-static differential ==",
        "live results identical to the static repair",
    ),
}


@pytest.mark.parametrize("example", sorted(EXAMPLES))
def test_example_runs_clean(example):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(ROOT, "src"), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [sys.executable, os.path.join(ROOT, "examples", example)],
        capture_output=True,
        text=True,
        env=env,
        cwd=ROOT,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    for marker in EXAMPLES[example]:
        assert marker in proc.stdout, (
            f"{example} no longer prints {marker!r}; tour drifted?\n"
            f"stdout tail:\n{proc.stdout[-2000:]}"
        )
