"""Error hierarchy and top-level API surface tests."""

import pytest

import repro
from repro.errors import (
    ParseError,
    RefactoringError,
    ReproError,
    SemanticsError,
    SimulationError,
    SolverError,
    ValidationError,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "cls",
        [ParseError, ValidationError, SemanticsError, RefactoringError,
         SolverError, SimulationError],
    )
    def test_all_derive_from_repro_error(self, cls):
        assert issubclass(cls, ReproError)

    def test_parse_error_position_formatting(self):
        err = ParseError("bad token", line=3, column=7)
        assert "3:7" in str(err)
        assert err.line == 3 and err.column == 7

    def test_parse_error_without_position(self):
        assert str(ParseError("oops")) == "oops"

    def test_catch_all_at_tool_boundary(self):
        with pytest.raises(ReproError):
            repro.parse_program("schema {")


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_end_to_end_via_public_api(self):
        program = repro.parse_program(
            """
            schema T { key id; field v; }
            txn bump(k) {
              x := select v from T where id = k;
              update T set v = x.v + 1 where id = k;
            }
            """
        )
        pairs = repro.detect_anomalies(program)
        assert len(pairs) == 1
        report = repro.repair(program)
        assert report.residual_pairs == []
        text = repro.print_program(report.repaired_program)
        assert "T_V_LOG" in text

    def test_levels_exported(self):
        assert repro.EC.name == "EC"
        assert repro.SC.total_order

    def test_solver_error_on_bad_literal(self):
        from repro.smt.solver import Solver

        s = Solver()
        with pytest.raises(SolverError):
            s.add_clause([99])
