"""Formula layer tests: Tseitin conversion correctness via hypothesis."""

from hypothesis import given, settings, strategies as st

from repro.smt.formula import (
    And,
    BoolConst,
    FALSE,
    FormulaBuilder,
    Iff,
    Implies,
    Not,
    Or,
    TRUE,
    at_most_one,
    big_and,
    big_or,
    evaluate,
)


class TestOperators:
    def test_and_flattens(self):
        f = And(And(TRUE, FALSE), TRUE)
        assert len(f.operands) == 3

    def test_or_flattens(self):
        f = Or(Or(TRUE, FALSE), FALSE)
        assert len(f.operands) == 3

    def test_dunder_composition(self):
        fb = FormulaBuilder()
        a, b = fb.var("a"), fb.var("b")
        f = (a & b) | ~a
        assert isinstance(f, Or)

    def test_implies_expansion(self):
        fb = FormulaBuilder()
        a, b = fb.var("a"), fb.var("b")
        assert evaluate(Implies(a, b), {"a": True, "b": False}) is False
        assert evaluate(Implies(a, b), {"a": False, "b": False}) is True

    def test_iff(self):
        fb = FormulaBuilder()
        a, b = fb.var("a"), fb.var("b")
        assert evaluate(Iff(a, b), {"a": True, "b": True})
        assert not evaluate(Iff(a, b), {"a": True, "b": False})

    def test_big_and_empty_is_true(self):
        assert big_and([]) is TRUE

    def test_big_or_empty_is_false(self):
        assert big_or([]) is FALSE

    def test_at_most_one(self):
        fb = FormulaBuilder()
        vs = [fb.var(f"v{i}") for i in range(3)]
        f = at_most_one(vs)
        assert evaluate(f, {"v0": True, "v1": False, "v2": False})
        assert not evaluate(f, {"v0": True, "v1": True, "v2": False})


class TestBuilderSolving:
    def test_simple_sat(self):
        fb = FormulaBuilder()
        a, b = fb.var("a"), fb.var("b")
        fb.add(a | b)
        fb.add(~a)
        model = fb.check()
        assert model is not None
        assert not model["a"] and model["b"]

    def test_simple_unsat(self):
        fb = FormulaBuilder()
        a = fb.var("a")
        fb.add(a)
        fb.add(~a)
        assert fb.check() is None

    def test_constants(self):
        fb = FormulaBuilder()
        fb.add(TRUE)
        assert fb.check() is not None
        fb.add(FALSE)
        assert fb.check() is None

    def test_incremental_assertions(self):
        fb = FormulaBuilder()
        a, b, c = fb.var("a"), fb.var("b"), fb.var("c")
        fb.add(Implies(a, b))
        fb.add(Implies(b, c))
        fb.add(a)
        model = fb.check()
        assert model and model["c"]
        fb.add(~c)
        assert fb.check() is None

    def test_iff_constraint(self):
        fb = FormulaBuilder()
        a, b = fb.var("a"), fb.var("b")
        fb.add(Iff(a, b))
        fb.add(a)
        model = fb.check()
        assert model and model["b"]


# Generative: Tseitin-encoded solving agrees with direct evaluation.

_names = ["p", "q", "r", "s"]


def _formula_strategy():
    base = st.one_of(
        st.sampled_from(_names).map(lambda n: FormulaBuilder().var(n).__class__(n)),
        st.booleans().map(BoolConst),
    )

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda t: And(*t)),
            st.tuples(children, children).map(lambda t: Or(*t)),
            st.tuples(children, children).map(lambda t: Iff(*t)),
            children.map(Not),
        )

    return st.recursive(base, extend, max_leaves=10)


class TestTseitinEquisatisfiability:
    @given(_formula_strategy())
    @settings(max_examples=150, deadline=None)
    def test_sat_iff_some_assignment_satisfies(self, formula):
        import itertools

        fb = FormulaBuilder()
        for n in _names:
            fb.var(n)
        fb.add(formula)
        model = fb.check()
        brute = any(
            evaluate(formula, dict(zip(_names, bits)))
            for bits in itertools.product([False, True], repeat=len(_names))
        )
        assert (model is not None) == brute
        if model is not None:
            assert evaluate(formula, model)
