"""Traversal/rewriting helper tests."""


from repro.lang import ast, parse_expression, parse_program
from repro.lang.traverse import (
    accessed_tables,
    expression_field_accesses,
    expression_vars,
    iter_subexpressions,
    rewrite_commands,
    rewrite_expression,
    rewrite_program_expressions,
    rewrite_where,
    used_vars,
    where_vars,
)


class TestExpressionTraversal:
    def test_iter_subexpressions_preorder(self):
        e = parse_expression("x.f + 2")
        kinds = [type(s).__name__ for s in iter_subexpressions(e)]
        assert kinds[0] == "BinOp"
        assert "At" in kinds and "Const" in kinds

    def test_expression_vars(self):
        e = parse_expression("x.f + sum(y.g) * k")
        assert expression_vars(e) == {"x", "y"}

    def test_expression_field_accesses(self):
        e = parse_expression("x.f + x.g")
        assert expression_field_accesses(e) == {("x", "f"), ("x", "g")}

    def test_rewrite_expression_bottom_up(self):
        e = parse_expression("a + 1")

        def bump_consts(expr):
            if isinstance(expr, ast.Const) and isinstance(expr.value, int):
                return ast.Const(expr.value + 10)
            return None

        out = rewrite_expression(e, bump_consts)
        assert out == parse_expression("a + 11")

    def test_rewrite_reaches_at_indices(self):
        # `x.f` desugars to at(1, x.f); the hidden index participates in
        # bottom-up rewriting like any subexpression.
        e = parse_expression("x.f")
        out = rewrite_expression(
            e, lambda s: ast.Const(2) if s == ast.Const(1) else None
        )
        assert out == ast.At(ast.Const(2), "x", "f")

    def test_rewrite_leaves_unmatched_nodes(self):
        e = parse_expression("a + b")
        out = rewrite_expression(e, lambda _: None)
        assert out == e

    def test_rewrite_inside_at_index(self):
        e = ast.At(parse_expression("1 + 1"), "x", "f")
        out = rewrite_expression(
            e, lambda s: ast.Const(2) if s == parse_expression("1 + 1") else None
        )
        assert out.index == ast.Const(2)


class TestWhereTraversal:
    def test_rewrite_where(self):
        from repro.lang import parse_where

        w = parse_where("id = k and grp = x.g")
        out = rewrite_where(
            w,
            lambda e: ast.Arg("j") if e == ast.Arg("k") else None,
        )
        conjuncts = ast.where_conjuncts(out)
        assert conjuncts[0].expr == ast.Arg("j")

    def test_where_vars(self):
        from repro.lang import parse_where

        assert where_vars(parse_where("a = x.f and b = y.g")) == {"x", "y"}


class TestCommandTraversal:
    def test_rewrite_commands_delete(self, courseware):
        txn = courseware.transaction("getSt")
        body = rewrite_commands(
            txn.body,
            lambda c: () if getattr(c, "label", "") == "S2" else None,
        )
        labels = [c.label for c in ast.iter_commands(body)]
        assert labels == ["S1", "S3"]

    def test_rewrite_commands_split(self, courseware):
        txn = courseware.transaction("setSt")
        body = rewrite_commands(
            txn.body,
            lambda c: (c, c) if getattr(c, "label", "") == "U1" else None,
        )
        labels = [c.label for c in ast.iter_commands(body)]
        assert labels.count("U1") == 2

    def test_rewrite_recurses_into_control(self):
        p = parse_program(
            "schema T { key id; field v; } txn f(k) "
            "{ if (k > 0) { update T set v = 1 where id = k; } }"
        )
        txn = p.transaction("f")
        seen = []
        rewrite_commands(txn.body, lambda c: seen.append(c.label) or None)
        assert seen == ["U1"]

    def test_rewrite_program_expressions_touches_everything(self, courseware):
        out = rewrite_program_expressions(
            courseware,
            lambda e: ast.Arg("ID") if e == ast.Arg("id") else None,
        )
        text_out = str(out)
        assert "Arg(name='ID')" in text_out
        # Original untouched (immutability).
        assert "Arg(name='ID')" not in str(courseware)


class TestDataflowHelpers:
    def test_used_vars(self, courseware):
        assert used_vars(courseware.transaction("getSt")) == {"x", "y"}

    def test_used_vars_excludes_dead_bindings(self, courseware):
        # z is bound but never read in getSt.
        assert "z" not in used_vars(courseware.transaction("getSt"))

    def test_accessed_tables(self, courseware):
        assert accessed_tables(courseware.transaction("getSt")) == {
            "STUDENT", "EMAIL", "COURSE",
        }
