"""CDCL solver tests: unit cases, classic instances, and a generative
cross-check against brute-force enumeration."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.budget import Budget
from repro.errors import SolverError
from repro.smt.solver import Solver, lit, neg, lit_var, lit_sign, stats_delta


class TestLiteralEncoding:
    def test_positive_literal(self):
        assert lit(3) == 6
        assert lit_var(lit(3)) == 3
        assert lit_sign(lit(3))

    def test_negative_literal(self):
        l = lit(3, positive=False)
        assert l == 7
        assert lit_var(l) == 3
        assert not lit_sign(l)

    def test_negation_involution(self):
        l = lit(5)
        assert neg(neg(l)) == l
        assert lit_var(neg(l)) == 5


class TestBasicSolving:
    def test_empty_problem_sat(self):
        assert Solver().solve().sat

    def test_single_unit(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([lit(a)])
        r = s.solve()
        assert r.sat and r.value(a)

    def test_contradictory_units(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([lit(a)])
        s.add_clause([neg(lit(a))])
        assert not s.solve().sat

    def test_implication_chain(self):
        s = Solver()
        vs = [s.new_var() for _ in range(10)]
        for i in range(9):
            s.add_clause([neg(lit(vs[i])), lit(vs[i + 1])])
        s.add_clause([lit(vs[0])])
        r = s.solve()
        assert r.sat and all(r.value(v) for v in vs)

    def test_tautological_clause_ignored(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([lit(a), neg(lit(a))])
        assert s.solve().sat

    def test_duplicate_literals_deduplicated(self):
        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([lit(a), lit(a), lit(b)])
        assert s.solve().sat

    def test_empty_clause_unsat(self):
        s = Solver()
        s.new_var()
        s.add_clause([])
        assert not s.solve().sat

    def test_model_satisfies_all_clauses(self):
        s = Solver()
        vs = [s.new_var() for _ in range(4)]
        clauses = [
            [lit(vs[0]), lit(vs[1])],
            [neg(lit(vs[0])), lit(vs[2])],
            [neg(lit(vs[1])), neg(lit(vs[2])), lit(vs[3])],
        ]
        for c in clauses:
            s.add_clause(c)
        r = s.solve()
        assert r.sat
        for c in clauses:
            assert any(r.model.get(l >> 1, False) != bool(l & 1) for l in c)


def _pigeonhole(pigeons, holes):
    s = Solver()
    v = [[s.new_var() for _ in range(holes)] for _ in range(pigeons)]
    for i in range(pigeons):
        s.add_clause([lit(v[i][j]) for j in range(holes)])
    for j in range(holes):
        for i1 in range(pigeons):
            for i2 in range(i1 + 1, pigeons):
                s.add_clause([neg(lit(v[i1][j])), neg(lit(v[i2][j]))])
    return s


class TestClassicInstances:
    def test_pigeonhole_unsat(self):
        assert not _pigeonhole(4, 3).solve().sat

    def test_pigeonhole_sat(self):
        assert _pigeonhole(3, 3).solve().sat

    def test_larger_pigeonhole_unsat(self):
        # Exercises clause learning and restarts.
        assert not _pigeonhole(6, 5).solve().sat

    def test_at_most_one_chain(self):
        s = Solver()
        vs = [s.new_var() for _ in range(8)]
        s.add_clause([lit(v) for v in vs])
        for i in range(8):
            for j in range(i + 1, 8):
                s.add_clause([neg(lit(vs[i])), neg(lit(vs[j]))])
        r = s.solve()
        assert r.sat
        assert sum(r.value(v) for v in vs) == 1


def _brute_force(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(any(bits[l >> 1] != bool(l & 1) for l in c) for c in clauses):
            return True
    return False


@st.composite
def _cnf(draw):
    num_vars = draw(st.integers(min_value=2, max_value=7))
    num_clauses = draw(st.integers(min_value=1, max_value=24))
    clauses = []
    for _ in range(num_clauses):
        width = draw(st.integers(min_value=1, max_value=3))
        clause = [
            lit(draw(st.integers(0, num_vars - 1)), draw(st.booleans()))
            for _ in range(width)
        ]
        clauses.append(clause)
    return num_vars, clauses


class TestAgainstBruteForce:
    @given(_cnf())
    @settings(max_examples=150, deadline=None)
    def test_matches_enumeration(self, problem):
        num_vars, clauses = problem
        s = Solver()
        for _ in range(num_vars):
            s.new_var()
        for c in clauses:
            s.add_clause(c)
        got = s.solve()
        assert got.sat == _brute_force(num_vars, clauses)
        if got.sat:
            for c in clauses:
                assert any(got.model.get(l >> 1, False) != bool(l & 1) for l in c)


class TestHeapBranching:
    """The indexed VSIDS heap must make exactly the decisions of the
    reference linear scan (ties break toward the lowest index in both)."""

    def _compare(self, build):
        heap_solver = build(Solver(branching="heap"))
        linear_solver = build(Solver(branching="linear"))
        heap_result = heap_solver.solve()
        linear_result = linear_solver.solve()
        assert heap_result.sat == linear_result.sat
        assert heap_result.model == linear_result.model
        assert heap_solver.stats() == linear_solver.stats()
        return heap_result

    def test_pigeonhole_unsat_identical(self):
        def build(s):
            v = [[s.new_var() for _ in range(4)] for _ in range(5)]
            for i in range(5):
                s.add_clause([lit(v[i][j]) for j in range(4)])
            for j in range(4):
                for i1 in range(5):
                    for i2 in range(i1 + 1, 5):
                        s.add_clause([neg(lit(v[i1][j])), neg(lit(v[i2][j]))])
            return s

        assert not self._compare(build).sat

    def test_at_most_one_identical(self):
        def build(s):
            vs = [s.new_var() for _ in range(8)]
            s.add_clause([lit(v) for v in vs])
            for i in range(8):
                for j in range(i + 1, 8):
                    s.add_clause([neg(lit(vs[i])), neg(lit(vs[j]))])
            return s

        assert self._compare(build).sat

    @given(_cnf())
    @settings(max_examples=60, deadline=None)
    def test_random_cnf_identical(self, problem):
        num_vars, clauses = problem

        def build(s):
            for _ in range(num_vars):
                s.new_var()
            for c in clauses:
                s.add_clause(c)
            return s

        self._compare(build)

    def test_unknown_branching_rejected(self):
        with pytest.raises(SolverError):
            Solver(branching="random")


def _assumption_instance(s, seed=58):
    """A deterministic random 3-SAT instance (satisfiable under the
    assumptions, with several conflicts under the default heuristics)
    whose conflict-driven backjumps target levels inside the two-deep
    assumption prefix -- exactly the shape the ``_assumption_level``
    regression mis-handled."""
    import random

    rng = random.Random(seed)
    vs = [s.new_var() for _ in range(30)]
    clauses = []
    for _ in range(120):
        c = [lit(rng.randrange(30), rng.random() < 0.5) for _ in range(3)]
        clauses.append(c)
        s.add_clause(c)
    return vs, clauses, [lit(vs[0]), lit(vs[1])]


class TestAssumptionLevels:
    """Regression: _assumption_level returned 0, so backjumping could
    cancel assumption decisions mid-solve."""

    def test_deep_backjump_keeps_assumptions(self):
        cancels = []

        class Probe(Solver):
            def _cancel_until(self, level):
                cancels.append((len(self.trail_lim), level))
                super()._cancel_until(level)

        s = Probe()
        vs, clauses, assumptions = _assumption_instance(s)
        r = s.solve(assumptions=assumptions)
        assert r.sat
        assert s.stats()["conflicts"] > 0
        assert r.value(vs[0]) and r.value(vs[1])
        for c in clauses:
            assert any(r.model.get(l >> 1, False) != bool(l & 1) for l in c)
        # Conflict-driven backjumps clamp at the assumption prefix; only
        # the initial reset and learned-unit restarts may go to level 0.
        for from_level, to_level in cancels:
            if from_level > len(assumptions):
                assert to_level == 0 or to_level >= len(assumptions)
        # The clamp actually engaged: some backjump from deeper in the
        # tree stopped exactly at the assumption prefix.
        assert any(
            from_level > 2 and to_level == 2 for from_level, to_level in cancels
        )

    def test_assumption_level_counts_decision_prefix(self):
        seen = []

        class Spy(Solver):
            def _assumption_level(self, assumptions):
                level = super()._assumption_level(assumptions)
                seen.append(level)
                return level

        s = Spy()
        _, _, assumptions = _assumption_instance(s)
        assert s.solve(assumptions=assumptions).sat
        # At some conflict both assumption decisions were on the trail.
        assert seen and max(seen) == 2

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7, 8, 9])
    def test_assumptions_agree_with_unit_clauses(self, seed):
        """Solving under assumptions must decide exactly like solving
        with the assumptions added as unit clauses (seed 1 is UNSAT and
        historically went wrong when a no-op backjump at the assumption
        prefix swallowed a conflict)."""
        s1 = Solver()
        vs1, clauses, assumptions = _assumption_instance(s1, seed=seed)
        r1 = s1.solve(assumptions=assumptions)
        s2 = Solver()
        vs2, _, _ = _assumption_instance(s2, seed=seed)
        for a in [lit(vs2[0]), lit(vs2[1])]:
            s2.add_clause([a])
        r2 = s2.solve()
        assert r1.sat == r2.sat
        if r1.sat:
            for c in clauses:
                assert any(r1.model.get(l >> 1, False) != bool(l & 1) for l in c)

    def test_no_assumptions_is_level_zero(self):
        s = Solver()
        s.new_var()
        assert s._assumption_level([]) == 0

    def test_violated_assumption_unsat(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([neg(lit(a))])
        assert not s.solve(assumptions=[lit(a)]).sat

    def test_contradictory_assumptions_unsat(self):
        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([lit(a), lit(b)])
        assert not s.solve(assumptions=[lit(a), neg(lit(a))]).sat


class TestIncremental:
    def test_solve_twice_stable(self):
        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([lit(a), lit(b)])
        assert s.solve().sat
        assert s.solve().sat

    def test_add_after_solve(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([lit(a)])
        assert s.solve().sat
        s.add_clause([neg(lit(a))])
        assert not s.solve().sat

    def test_stats_populated(self):
        s = _pigeonhole(5, 4)
        s.solve()
        assert s.stats()["conflicts"] > 0
        assert s.stats()["decisions"] > 0


def _batch_instance(seed=58):
    """Twin solvers over the same deterministic 3-SAT instance plus a
    spread of assumption sets (satisfiable, conflicting, empty)."""
    a, b = Solver(), Solver()
    vs, clauses, assumptions = _assumption_instance(a, seed=seed)
    for _ in vs:
        b.new_var()
    for c in clauses:
        b.add_clause(c)
    sets = [
        list(assumptions),
        [],
        [neg(assumptions[0])],
        [assumptions[0], neg(assumptions[1])],
        [neg(lit(vs[5])), lit(vs[7]), lit(vs[19])],
    ]
    return a, b, vs, sets


class TestSolveBatch:
    """solve_batch is the batched entry point for level sweeps: it must
    be observationally identical to a sequential loop of solve calls."""

    def test_matches_sequential_in_order(self):
        batched, sequential, vs, sets = _batch_instance()
        batch = batched.solve_batch(sets)
        loop = [sequential.solve(s) for s in sets]
        assert len(batch) == len(sets)
        for got, want in zip(batch, loop):
            assert got.sat == want.sat
            assert not got.unknown and not want.unknown
            if got.sat:
                assert [got.value(v) for v in vs] == [want.value(v) for v in vs]

    def test_verdicts_independent_of_batch_composition(self):
        _, _, _, sets = _batch_instance()
        solo = []
        for aset in sets:
            s = Solver()
            _assumption_instance(s)
            solo.append(s.solve_batch([aset])[0].sat)
        full = Solver()
        _assumption_instance(full)
        assert [r.sat for r in full.solve_batch(sets)] == solo
        rev = Solver()
        _assumption_instance(rev)
        assert [r.sat for r in rev.solve_batch(list(reversed(sets)))] == list(
            reversed(solo)
        )

    def test_stats_out_one_delta_per_solve(self):
        s = Solver()
        _, _, assumptions = _assumption_instance(s)
        sets = [list(assumptions), [], [neg(assumptions[0])]]
        before = s.stats()
        deltas = []
        results = s.solve_batch(sets, stats_out=deltas)
        total = stats_delta(s.stats(), before)
        assert len(deltas) == len(results) == len(sets)
        for key in ("props", "decisions", "conflicts", "arena_bytes"):
            # Consecutive snapshots chain, so per-solve deltas telescope
            # to the whole-batch delta.
            assert sum(d[key] for d in deltas) == total[key]
        assert all(d["props"] >= 0 for d in deltas)

    def test_exhausted_budget_truncates_batch(self):
        s = _pigeonhole(6, 5)
        results = s.solve_batch([[], [], []], budget=Budget(max_conflicts=1))
        assert len(results) < 3
        assert results[-1].unknown
        # The solver stays reusable after the exhausted query.
        assert not s.solve().sat

    def test_empty_batch(self):
        assert Solver().solve_batch([]) == []


class TestClauseDbSelection:
    def test_default_is_arena(self):
        s = Solver()
        assert s.clause_db == "arena"
        a, b = s.new_var(), s.new_var()
        s.add_clause([lit(a), lit(b)])
        assert s.stats()["arena_bytes"] > 0

    def test_objects_backend_keeps_zero_arena(self):
        s = Solver(clause_db="objects")
        assert s.clause_db == "objects"
        a, b = s.new_var(), s.new_var()
        s.add_clause([lit(a), lit(b)])
        assert s.stats()["arena_bytes"] == 0
        assert s.solve().sat

    def test_unknown_backend_rejected(self):
        with pytest.raises(SolverError):
            Solver(clause_db="bogus")


class TestArenaCompactionStress:
    """Randomized add/retire/reduce churn on the arena backend, mirrored
    against the retained object backend.  The compaction floor is
    lowered so ``_reduce_db`` actually reclaims arena storage in-test."""

    NUM_VARS = 24

    def _model_satisfies(self, result, clauses):
        return all(
            any(result.value(lit_var(l)) == lit_sign(l) for l in c)
            for c in clauses
        )

    def _seed_hard_group(self, s):
        """A pigeonhole(6,5) sub-problem in its own group: refuting it
        once leaves a learned DB that dominates the original clauses,
        which is the long-lived-warm-solver shape compaction targets."""
        hard = s.new_group()
        v = [[s.new_var() for _ in range(5)] for _ in range(6)]
        for i in range(6):
            s.add_clause([lit(v[i][j]) for j in range(5)], group=hard)
        for j in range(5):
            for i1 in range(6):
                for i2 in range(i1 + 1, 6):
                    s.add_clause(
                        [neg(lit(v[i1][j])), neg(lit(v[i2][j]))], group=hard
                    )
        assert not s.solve([s.group_literal(hard)]).sat
        s.retire_group(hard)

    def test_randomized_add_retire_reduce(self, monkeypatch):
        import repro.smt.solver as solver_module

        monkeypatch.setattr(solver_module, "_COMPACT_MIN_DEAD", 16)
        rng = random.Random(2024)
        arena = Solver()
        objects = Solver(clause_db="objects")
        for s in (arena, objects):
            for _ in range(self.NUM_VARS):
                s.new_var()
            self._seed_hard_group(s)
        groups = []  # [(arena_group, objects_group, clauses)]
        shrank = False
        for round_no in range(10):
            ga, go = arena.new_group(), objects.new_group()
            body = [
                [
                    lit(rng.randrange(self.NUM_VARS), rng.random() < 0.5)
                    for _ in range(3)
                ]
                for _ in range(30)
            ]
            for c in body:
                arena.add_clause(c, group=ga)
                objects.add_clause(c, group=go)
            groups.append((ga, go, body))
            # A few solves per round under varying assumptions keeps the
            # conflict analysis (and so the learned DB) churning.
            for _ in range(3):
                active = [g for g in groups if not arena.is_retired(g[0])]
                extra = [
                    lit(rng.randrange(self.NUM_VARS), rng.random() < 0.5)
                    for _ in range(rng.randrange(3))
                ]
                ra = arena.solve(
                    [arena.group_literal(g) for g, _, _ in active] + extra
                )
                ro = objects.solve(
                    [objects.group_literal(g) for _, g, _ in active] + extra
                )
                assert ra.sat == ro.sat, f"round {round_no}"
                if ra.sat:
                    assert self._model_satisfies(
                        ra, [c for _, _, body in active for c in body]
                    )
            before = arena.stats()["arena_bytes"]
            arena._reduce_db()
            objects._reduce_db()
            shrank = shrank or arena.stats()["arena_bytes"] < before
            if rng.random() < 0.4:
                victim = rng.choice(groups)
                arena.retire_group(victim[0])
                objects.retire_group(victim[1])
        stats = arena.stats()
        # _reduce_db is a no-op (and doesn't count) on rounds with no
        # eligible victims, so only a lower bound is stable here.
        assert stats["db_reductions"] >= 1
        assert stats["learned_live"] == len(arena.learned)
        assert shrank, "no _reduce_db round ever compacted the arena"
        # The churned warm solver still agrees with a cold solver on the
        # surviving formula.
        live = [g for g in groups if not arena.is_retired(g[0])]
        cold = Solver()
        for _ in range(self.NUM_VARS):
            cold.new_var()
        for _, _, body in live:
            for c in body:
                cold.add_clause(c)
        warm = arena.solve([arena.group_literal(g) for g, _, _ in live])
        assert warm.sat == cold.solve().sat
