"""End-to-end repair tests: the paper's Figures 3/9/11 reproduced."""

import pytest

from repro.analysis import detect_anomalies
from repro.lang import ast, parse_program, print_program
from repro.repair import repair


class TestCoursewareRepair:
    """The running example must reproduce Figure 3 exactly."""

    @pytest.fixture
    def report(self, courseware):
        return repair(courseware)

    def test_all_anomalies_repaired(self, report):
        assert len(report.initial_pairs) == 5
        assert report.residual_pairs == []
        assert report.repair_ratio == 1.0

    def test_tables_three_to_two(self, report):
        names = set(report.repaired_program.schema_names)
        assert names == {"STUDENT", "COURSE_CO_ST_CNT_LOG"}

    def test_student_schema_absorbed_fields(self, report):
        student = report.repaired_program.schema("STUDENT")
        assert "st_em_addr" in student.fields
        assert "st_co_avail" in student.fields

    def test_getst_is_single_select(self, report):
        get_st = report.repaired_program.transaction("getSt")
        cmds = list(ast.iter_db_commands(get_st))
        assert len(cmds) == 1
        assert isinstance(cmds[0], ast.Select)
        assert cmds[0].table == "STUDENT"

    def test_setst_is_single_update(self, report):
        set_st = report.repaired_program.transaction("setSt")
        cmds = list(ast.iter_db_commands(set_st))
        assert len(cmds) == 1
        assert isinstance(cmds[0], ast.Update)
        written = set(cmds[0].written_fields)
        assert written == {"st_name", "st_em_addr"}

    def test_regst_is_update_plus_log_insert(self, report):
        reg_st = report.repaired_program.transaction("regSt")
        cmds = list(ast.iter_db_commands(reg_st))
        assert len(cmds) == 2
        assert isinstance(cmds[0], ast.Update)
        assert set(cmds[0].written_fields) == {"st_co_id", "st_reg", "st_co_avail"}
        assert isinstance(cmds[1], ast.Insert)
        assert cmds[1].table == "COURSE_CO_ST_CNT_LOG"

    def test_repaired_program_validates(self, report):
        from repro.lang.validate import validate_program

        validate_program(report.repaired_program)

    def test_repaired_program_clean_on_reanalysis(self, report):
        assert detect_anomalies(report.repaired_program) == []

    def test_correspondences_cover_moved_fields(self, report):
        covered = {(c.src_table, c.src_field) for c in report.correspondences}
        assert ("EMAIL", "em_addr") in covered
        assert ("COURSE", "co_avail") in covered
        assert ("COURSE", "co_st_cnt") in covered

    def test_outcome_actions(self, report):
        actions = {o.action for o in report.outcomes}
        assert "redirected+merged" in actions
        assert "logged" in actions
        assert "merged" in actions

    def test_serializable_variant_has_no_flags(self, report):
        # Nothing residual, so no transaction gets pinned.
        variant = report.serializable_variant()
        assert not any(t.serializable for t in variant.transactions)

    def test_summary_mentions_counts(self, report):
        text = report.summary()
        assert "5 -> 0" in text


class TestPartialRepair:
    SRC = """
    schema S { key id; field bal; }
    schema C { key c_id ref S.id; field c_bal; }

    txn check_and_spend(k, amt) {
      s := select bal from S where id = k;
      c := select c_bal from C where c_id = k;
      if (s.bal + c.c_bal >= amt) {
        update C set c_bal = c.c_bal - amt where c_id = k;
      }
    }

    txn zero(k) {
      update S set bal = 0 where id = k;
      update C set c_bal = 0 where c_id = k;
    }
    """

    def test_fractures_merge_but_races_remain(self):
        p = parse_program(self.SRC)
        report = repair(p)
        assert len(report.residual_pairs) < len(report.initial_pairs)
        assert report.residual_pairs  # zeroing blocks the logger
        flagged = {t.name for t in report.serializable_variant().transactions if t.serializable}
        assert flagged  # residual txns pinned to SC

    def test_tables_fused(self):
        p = parse_program(self.SRC)
        report = repair(p)
        assert len(report.repaired_program.schemas) == 1


class TestRepairIdempotence:
    def test_second_repair_is_noop(self, courseware):
        first = repair(courseware)
        second = repair(first.repaired_program)
        assert second.initial_pairs == []
        assert print_program(second.repaired_program) == print_program(
            first.repaired_program
        )

    def test_clean_program_untouched(self):
        src = """
        schema T { key id; field v; }
        txn r(k) { x := select v from T where id = k; return x.v; }
        """
        p = parse_program(src)
        report = repair(p)
        assert report.initial_pairs == []
        assert print_program(report.repaired_program) == print_program(p)


class TestSiBenchRepair:
    SRC = """
    schema SITEM { key si_id; field si_value; }
    txn ReadValue(k) {
      x := select si_value from SITEM where si_id = k;
      return x.si_value;
    }
    txn IncrementValue(k) {
      x := select si_value from SITEM where si_id = k;
      update SITEM set si_value = x.si_value + 1 where si_id = k;
    }
    """

    def test_single_anomaly_fully_repaired(self):
        report = repair(parse_program(self.SRC))
        assert len(report.initial_pairs) == 1
        assert report.residual_pairs == []

    def test_increment_becomes_functional(self):
        report = repair(parse_program(self.SRC))
        incr = report.repaired_program.transaction("IncrementValue")
        cmds = list(ast.iter_db_commands(incr))
        assert len(cmds) == 1
        assert isinstance(cmds[0], ast.Insert)
