"""Graceful drain under concurrent load: no accepted job is ever lost.

Drives a real HTTP server with the closed-loop load driver's helpers
(:mod:`benchmarks.service_load`), flips the server into drain
mid-burst, and checks the durability contract end to end:

- late submitters get a clean 503 ``draining`` with ``Retry-After``,
  never a hang or a dropped connection;
- every job accepted (202) before the drain is either finished or
  still safely queued in the job db -- none lost, none duplicated;
- the drained workspace checkpointed its persistent query cache;
- a *second* service booted on the same job db recovers the queued
  remainder and runs every last accepted job to a terminal status.
"""

import os
import sys
import threading
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "benchmarks"))

from repro.api import Workspace  # noqa: E402
from repro.service import make_server  # noqa: E402
from repro.service.store import JobStore  # noqa: E402

from service_load import _post_json, job_request  # noqa: E402

TERMINAL = ("done", "failed", "cancelled")


def _start(tmp_path, job_db, cache_dir):
    workspace = Workspace(strategy="incremental", cache_dir=cache_dir)
    server = make_server(workspace, port=0, job_db=job_db)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    return workspace, server, thread, f"http://{host}:{port}"


def test_drain_mid_burst_loses_nothing(tmp_path):
    job_db = str(tmp_path / "jobs.sqlite")
    cache_dir = str(tmp_path / "cache")
    workspace, server, thread, base = _start(tmp_path, job_db, cache_dir)
    service = server.service

    accepted = []
    rejected_draining = [0]
    lock = threading.Lock()

    def submitter(indexes):
        for index in indexes:
            status, payload, retry_after = _post_json(
                base + "/v1/jobs",
                job_request(index, kind="analyze_request", txns=2),
                timeout=30,
            )
            with lock:
                if status == 202:
                    accepted.append(payload["id"])
                elif status == 503:
                    rejected_draining[0] += 1
                    assert retry_after is not None and retry_after >= 1
                else:
                    raise AssertionError(f"unexpected {status}: {payload}")

    jobs, clients = 12, 4
    chunks = [range(c, jobs, clients) for c in range(clients)]
    threads = [
        threading.Thread(target=submitter, args=(chunk,)) for chunk in chunks
    ]
    for t in threads:
        t.start()
    # Flip into drain while the burst is still arriving: wait only for
    # the first acceptance so in-flight and queued work both exist.
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        with lock:
            if accepted:
                break
        time.sleep(0.002)
    drained = service.drain(timeout=120)
    for t in threads:
        t.join()
    assert drained, "drain must finish within its timeout"
    assert accepted, "the burst must have landed at least one job"

    # After the drain: nothing running, nothing lost.
    statuses = {}
    for job_id in accepted:
        job = service.store.get(job_id)
        assert job is not None, f"accepted job {job_id} vanished"
        statuses[job_id] = job.status
    assert all(s in TERMINAL + ("queued",) for s in statuses.values()), statuses
    server.close()
    thread.join(timeout=10)
    workspace.close()

    # The drained workspace checkpointed its persistent cache to disk.
    cache_files = [
        name
        for _, _, files in os.walk(cache_dir)
        for name in files
        if name.endswith((".sqlite", ".db")) or "cache" in name
    ]
    assert cache_files, f"no cache checkpoint under {cache_dir}"

    # A fresh service on the same job db runs the queued remainder.
    workspace2, server2, thread2, _ = _start(tmp_path, job_db, cache_dir)
    try:
        deadline = time.monotonic() + 240
        pending = set(accepted)
        while pending and time.monotonic() < deadline:
            for job_id in list(pending):
                job = server2.service.store.get(job_id)
                assert job is not None, f"job {job_id} lost across restart"
                if job.status in TERMINAL:
                    pending.discard(job_id)
            time.sleep(0.05)
        assert not pending, (
            f"jobs not terminal after restart: "
            f"{ {j: server2.service.store.get(j).status for j in pending} }"
        )
    finally:
        server2.close()
        thread2.join(timeout=10)
        workspace2.close()

    # One row per accepted submission, before and after: reopen the db
    # read-only and count.
    store = JobStore(job_db)
    try:
        counters = store.counters()
        assert counters["total"] == len(accepted)
        assert counters["queued"] == 0 and counters["running"] == 0
    finally:
        store.close()
