"""Corpus benchmark sanity: every program parses, validates, populates,
executes its whole transaction mix, and repairs in the right direction."""

import random

import pytest

from repro.analysis import detect_anomalies, SC
from repro.corpus import ALL_BENCHMARKS, BY_NAME
from repro.repair import repair
from repro.semantics import run_serial

IDS = [b.name for b in ALL_BENCHMARKS]


@pytest.mark.parametrize("bench", ALL_BENCHMARKS, ids=IDS)
class TestCorpusPrograms:
    def test_parses_and_validates(self, bench):
        program = bench.program()
        assert program.transactions

    def test_txn_count_matches_paper(self, bench):
        assert len(bench.program().transactions) == bench.paper.txns

    def test_table_count_matches_paper(self, bench):
        assert len(bench.program().schemas) == bench.paper.tables_before

    def test_database_populates(self, bench):
        db = bench.database(scale=8)
        assert any(db.tables[t] for t in db.tables)

    def test_mix_covers_all_transactions(self, bench):
        mix_names = {name for name, _, _ in bench.mix}
        txn_names = {t.name for t in bench.program().transactions}
        assert mix_names == txn_names

    def test_workload_generation(self, bench):
        rng = random.Random(3)
        calls = bench.workload(rng, count=20, scale=8)
        assert len(calls) == 20
        assert all(c.name in {t.name for t in bench.program().transactions} for c in calls)

    def test_every_transaction_executes_serially(self, bench):
        rng = random.Random(5)
        program = bench.program()
        db = bench.database(scale=8)
        for name, _, gen in bench.mix:
            from repro.semantics import TxnCall

            call = TxnCall(name, gen(rng, 8))
            history = run_serial(program, db, [call])
            assert history.steps or program.transaction(name).body == ()

    def test_sc_level_is_clean(self, bench):
        assert detect_anomalies(bench.program(), SC) == []


@pytest.mark.parametrize("bench", ALL_BENCHMARKS, ids=IDS)
class TestCorpusRepair:
    def test_repair_reduces_anomalies(self, bench):
        report = repair(bench.program())
        assert len(report.residual_pairs) <= len(report.initial_pairs)

    def test_repaired_program_validates(self, bench):
        from repro.lang.validate import validate_program

        report = repair(bench.program())
        validate_program(report.repaired_program)

    def test_transaction_names_preserved(self, bench):
        report = repair(bench.program())
        before = {t.name for t in bench.program().transactions}
        after = {t.name for t in report.repaired_program.transactions}
        assert before == after


class TestExpectedShapes:
    """Anchor the headline Table-1 shape (exact values live in
    EXPERIMENTS.md; these bounds catch regressions)."""

    def test_courseware_exact(self):
        report = repair(BY_NAME["Courseware"].program())
        assert len(report.initial_pairs) == 5
        assert report.residual_pairs == []
        assert len(report.repaired_program.schemas) == 2

    def test_sibench_exact(self):
        report = repair(BY_NAME["SIBench"].program())
        assert len(report.initial_pairs) == 1
        assert report.residual_pairs == []

    def test_twitter_matches_paper_count(self):
        report = repair(BY_NAME["Twitter"].program())
        assert len(report.initial_pairs) == BY_NAME["Twitter"].paper.ec

    def test_smallbank_keeps_residual_races(self):
        report = repair(BY_NAME["SmallBank"].program())
        assert report.residual_pairs  # zeroing blocks full repair
        assert len(report.residual_pairs) < len(report.initial_pairs)

    def test_overall_repair_ratio_in_paper_band(self):
        total_ec = total_at = 0
        for bench in ALL_BENCHMARKS:
            report = repair(bench.program())
            total_ec += len(report.initial_pairs)
            total_at += len(report.residual_pairs)
        ratio = (total_ec - total_at) / total_ec
        # The paper repairs 74% on average; accept a band around it.
        assert 0.6 <= ratio <= 0.95, ratio

    def test_tpcc_adds_log_tables(self):
        report = repair(BY_NAME["TPC-C"].program())
        after = set(report.repaired_program.schema_names)
        assert any(name.endswith("_LOG") for name in after)
