"""The HTTP service: differential vs direct library calls, async jobs,
schema validation of every response, error mapping."""

import json
import os
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro
from repro.api import AnalyzeRequest, RepairRequest, Workspace
from repro.api.schema import iter_violations, schema_filename
from repro.corpus import ALL_BENCHMARKS, BY_NAME
from repro.lang import print_program
from repro.service import make_server

SCHEMA_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "schemas")


def committed_schema(name: str) -> dict:
    """Validate against the *committed* goldens, not the live code, so a
    response drifting from the frozen contract fails even if code and
    schema drifted together."""
    with open(os.path.join(SCHEMA_DIR, schema_filename(name))) as fh:
        return json.load(fh)


def assert_valid(payload, schema_name):
    violations = list(iter_violations(payload, committed_schema(schema_name)))
    assert not violations, violations


@pytest.fixture(scope="module")
def server():
    srv = make_server(port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.close()
    thread.join(timeout=5)


@pytest.fixture(scope="module")
def base(server):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


def call(base, method, path, body=None):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=600) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestHealthAndStats:
    def test_health(self, base):
        status, payload = call(base, "GET", "/v1/health")
        assert status == 200
        assert_valid(payload, "health")
        assert payload["version"] == repro.__version__
        assert payload["protocol"] == 1

    def test_stats_validates(self, base):
        status, payload = call(base, "GET", "/v1/stats")
        assert status == 200
        assert_valid(payload, "stats")
        assert "jobs" in payload


class TestDifferential:
    """Acceptance gate: the service answers concurrent analyze/repair
    requests with byte-identical verdicts/plans to direct library calls,
    over the corpus benchmarks."""

    def test_concurrent_corpus_differential(self, base):
        names = [b.name for b in ALL_BENCHMARKS]

        def analyze_req(name):
            return call(base, "POST", "/v1/analyze",
                        AnalyzeRequest(benchmark=name).to_json())

        def repair_req(name):
            return call(base, "POST", "/v1/repair",
                        RepairRequest(benchmark=name).to_json())

        with ThreadPoolExecutor(max_workers=6) as pool:
            analyze_futures = {n: pool.submit(analyze_req, n) for n in names}
            repair_futures = {n: pool.submit(repair_req, n) for n in names}
            analyzed = {n: f.result() for n, f in analyze_futures.items()}
            repaired = {n: f.result() for n, f in repair_futures.items()}

        # Direct library calls on the seed serial reference.
        with Workspace(strategy="serial") as ws:
            for name in names:
                status, payload = analyzed[name]
                assert status == 200, payload
                assert_valid(payload, "analyze_result")
                direct = ws.analyze(AnalyzeRequest(benchmark=name))
                assert payload["pairs"] == [p.to_json() for p in direct.pairs], name

                status, payload = repaired[name]
                assert status == 200, payload
                assert_valid(payload, "repair_result")
                report = ws.repair_program(BY_NAME[name].program())
                assert payload["plan"] == report.plan.to_json(), name
                assert payload["repaired_program"] == print_program(
                    report.repaired_program
                ), name
                assert payload["serializable_variant"] == print_program(
                    report.serializable_variant()
                ), name


class TestJobs:
    def wait_for(self, base, job_id, timeout=600):
        deadline = time.time() + timeout
        while time.time() < deadline:
            status, payload = call(base, "GET", f"/v1/jobs/{job_id}")
            assert status == 200
            if payload["status"] in ("done", "failed"):
                return payload
            time.sleep(0.05)
        pytest.fail("job did not finish")

    def test_async_repair_round_trip(self, base):
        request = RepairRequest(benchmark="Courseware").to_json()
        status, job = call(base, "POST", "/v1/jobs", request)
        assert status == 202
        assert_valid(job, "job")
        assert job["status"] in ("queued", "running")

        job = self.wait_for(base, job["id"])
        assert_valid(job, "job")
        assert job["status"] == "done", job["error"]
        assert job["events"], "job recorded no progress events"
        stages = {e["stage"] for e in job["events"]}
        assert "search.done" in stages

        # The async result is the same document the sync endpoint returns.
        status, sync = call(base, "POST", "/v1/repair", request)
        assert status == 200
        result = job["result"]
        assert_valid(result, "repair_result")
        assert result["plan"] == sync["plan"]
        assert result["repaired_program"] == sync["repaired_program"]

    def test_async_analyze_and_listing(self, base):
        status, job = call(
            base, "POST", "/v1/jobs", AnalyzeRequest(benchmark="SIBench").to_json()
        )
        assert status == 202 and job["kind"] == "analyze"
        done = self.wait_for(base, job["id"])
        assert_valid(done["result"], "analyze_result")
        status, listing = call(base, "GET", "/v1/jobs")
        assert status == 200
        assert any(j["id"] == job["id"] for j in listing["jobs"])

    def test_failed_job_reports_error_payload(self, base):
        status, job = call(
            base, "POST", "/v1/jobs", RepairRequest(benchmark="Nope").to_json()
        )
        assert status == 202
        done = self.wait_for(base, job["id"])
        assert done["status"] == "failed"
        assert_valid(done["error"], "error")
        assert done["error"]["error"]["code"] == "unknown-benchmark"

    def test_unknown_job_is_404(self, base):
        status, payload = call(base, "GET", "/v1/jobs/job-9999-deadbeef")
        assert status == 404
        assert payload["error"]["code"] == "job-not-found"


class TestErrorMapping:
    def test_unknown_endpoint_404(self, base):
        status, payload = call(base, "GET", "/v1/nope")
        assert status == 404
        assert_valid(payload, "error")
        assert payload["error"]["code"] == "not-found"

    def test_wrong_method_405(self, base):
        status, payload = call(base, "GET", "/v1/analyze")
        assert status == 405
        assert payload["error"]["code"] == "method-not-allowed"

    def test_bad_json_400(self, base):
        request = urllib.request.Request(
            base + "/v1/analyze", data=b"{nope", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(request, timeout=30)
        payload = json.loads(exc.value.read())
        assert exc.value.code == 400
        assert payload["error"]["code"] == "invalid-request"

    def test_schema_version_mismatch_400(self, base):
        body = AnalyzeRequest(benchmark="SIBench").to_json()
        body["version"] = 99
        status, payload = call(base, "POST", "/v1/analyze", body)
        assert status == 400
        assert payload["error"]["code"] == "unsupported-version"

    def test_unknown_benchmark_400(self, base):
        status, payload = call(
            base, "POST", "/v1/analyze", AnalyzeRequest(benchmark="Nope").to_json()
        )
        assert status == 400
        assert payload["error"]["code"] == "unknown-benchmark"

    def test_parse_error_400(self, base):
        status, payload = call(
            base, "POST", "/v1/analyze", AnalyzeRequest(source="schema {").to_json()
        )
        assert status == 400
        assert payload["error"]["code"] == "parse-error"


class TestSharedWorkspace:
    def test_served_requests_fill_the_persistent_cache(self, tmp_path):
        """A repair served over HTTP (handler thread!) must write
        through to the persistent cache so a later process warm-starts
        -- regression for the silent memory-only downgrade when the
        sqlite tier rejected cross-thread use."""
        cache_dir = str(tmp_path / "cache")
        with Workspace(strategy="incremental", cache_dir=cache_dir) as ws:
            srv = make_server(ws, port=0)
            thread = threading.Thread(target=srv.serve_forever, daemon=True)
            thread.start()
            host, port = srv.server_address[:2]
            status, served = call(
                f"http://{host}:{port}", "POST", "/v1/repair",
                RepairRequest(benchmark="SIBench").to_json(),
            )
            assert status == 200
            assert not ws.cache._db_broken
            srv.close()
            thread.join(timeout=5)
        with Workspace(strategy="incremental", cache_dir=cache_dir) as again:
            result = again.repair(RepairRequest(benchmark="SIBench"))
            assert result.plan == served["plan"]
            assert again.cache.persistent_hits > 0
            assert again.cache.misses == 0

    def test_requests_share_one_warm_workspace(self, base):
        """After the differential sweep, the stats endpoint must show a
        shared cache and (on warm strategies) live sessions -- proof the
        handler threads hit one workspace, not per-request state."""
        status, stats = call(base, "GET", "/v1/stats")
        assert status == 200
        total = sum(stats["requests"].values())
        assert total > 10
        if stats["strategy"] != "serial":  # auto-resolved warm strategy
            assert stats["cache"]["hits"] + stats["cache"]["misses"] > 0
