"""Anomaly oracle tests, anchored on the paper's running example."""

import pytest

from repro.analysis import AnomalyOracle, CC, EC, RR, SC, detect_anomalies
from repro.lang import parse_program


def pair_keys(pairs):
    return {(p.txn, p.c1, p.c2) for p in pairs}


class TestRunningExample:
    """Section 3.2 names these exact anomalous access pairs."""

    def test_five_pairs_under_ec(self, courseware):
        pairs = detect_anomalies(courseware, EC)
        assert len(pairs) == 5

    def test_pair_identities(self, courseware):
        keys = pair_keys(detect_anomalies(courseware, EC))
        assert ("getSt", "S1", "S2") in keys   # (S1,{st_name},S2,{em_addr})
        assert ("getSt", "S1", "S3") in keys   # the dirty-read of Fig 2
        assert ("setSt", "U1", "U2") in keys   # (U1,{st_name},U2,{em_addr})

    def test_chi1_fields(self, courseware):
        # chi_1 = (U3, {st_co_id, st_reg}, U4, {co_avail}); our labeller
        # names regSt's commands U1 (STUDENT update) and U2 (COURSE update).
        pairs = detect_anomalies(courseware, EC)
        chi1 = next(p for p in pairs if p.txn == "regSt" and p.c1 == "U1")
        assert chi1.fields1 == {"st_co_id", "st_reg"}
        assert "co_avail" in chi1.fields2

    def test_chi2_lost_update(self, courseware):
        pairs = detect_anomalies(courseware, EC)
        chi2 = next(
            p for p in pairs if p.txn == "regSt" and p.c1 == "S1"
        )
        assert chi2.fields1 == {"co_st_cnt"}
        assert chi2.fields2 == {"co_st_cnt"}
        assert "rw-race" in chi2.patterns

    def test_serializability_eliminates_everything(self, courseware):
        assert detect_anomalies(courseware, SC) == []

    def test_cc_and_rr_keep_the_fractures(self, courseware):
        # Matches the paper's Courseware row: EC 5, CC 5, RR 5.
        assert len(detect_anomalies(courseware, CC)) == 5
        assert len(detect_anomalies(courseware, RR)) == 5


class TestLevelOrdering:
    """Stronger levels can only remove anomalies, never add them."""

    @pytest.mark.parametrize("level", [CC, RR, SC])
    def test_subset_of_ec(self, courseware, level):
        ec = pair_keys(detect_anomalies(courseware, EC))
        stronger = pair_keys(detect_anomalies(courseware, level))
        assert stronger <= ec


class TestRepeatableRead:
    def test_rr_fixes_same_item_non_repeatable_read(self):
        src = """
        schema T { key id; field v; }
        txn double_read(k) {
          a := select v from T where id = k;
          b := select v from T where id = k;
          return a.v - b.v;
        }
        txn writer(k, n) { update T set v = n where id = k; }
        """
        p = parse_program(src)
        assert len(detect_anomalies(p, EC)) == 1
        assert detect_anomalies(p, RR) == []

    def test_rr_keeps_lost_update(self):
        src = """
        schema T { key id; field v; }
        txn incr(k) {
          x := select v from T where id = k;
          update T set v = x.v + 1 where id = k;
        }
        """
        p = parse_program(src)
        assert len(detect_anomalies(p, EC)) == 1
        assert len(detect_anomalies(p, RR)) == 1
        assert detect_anomalies(p, SC) == []

    def test_rr_keeps_cross_record_fracture(self):
        src = """
        schema A { key id; field x; }
        schema B { key id; field y; }
        txn w(k) { update A set x = 1 where id = k; update B set y = 1 where id = k; }
        txn r(k) {
          a := select x from A where id = k;
          b := select y from B where id = k;
          return a.x + b.y;
        }
        """
        p = parse_program(src)
        ec = pair_keys(detect_anomalies(p, EC))
        rr = pair_keys(detect_anomalies(p, RR))
        assert ("r", "S1", "S2") in ec
        assert ("r", "S1", "S2") in rr  # frozen-but-partial snapshots remain


class TestNoFalseAlarms:
    def test_read_only_program_is_clean(self):
        src = """
        schema T { key id; field v; }
        txn r1(k) { x := select v from T where id = k; return x.v; }
        txn r2(k) { x := select v from T where id = k; return x.v; }
        """
        assert detect_anomalies(parse_program(src), EC) == []

    def test_single_command_txns_have_no_pairs(self):
        src = """
        schema T { key id; field v; }
        txn w(k, n) { update T set v = n where id = k; }
        txn r(k) { x := select v from T where id = k; return x.v; }
        """
        assert detect_anomalies(parse_program(src), EC) == []

    def test_disjoint_tables_no_interference(self):
        src = """
        schema A { key id; field x; }
        schema B { key id; field y; }
        txn t1(k) {
          a := select x from A where id = k;
          b := select y from B where id = k;
          return a.x + b.y;
        }
        txn t2(k, n) { update A set x = n where id = k; }
        """
        # t2 writes only A; no transaction writes both tables, so t1's
        # two reads cannot be fractured by a single interferer.
        assert detect_anomalies(parse_program(src), EC) == []

    def test_distinct_constant_keys_never_alias(self):
        src = """
        schema T { key id; field v; }
        txn t1() {
          x := select v from T where id = 1;
          y := select v from T where id = 2;
          return x.v + y.v;
        }
        txn t2() {
          update T set v = 1 where id = 3;
          update T set v = 2 where id = 4;
        }
        """
        assert detect_anomalies(parse_program(src), EC) == []

    def test_uuid_inserts_do_not_race(self):
        src = """
        schema LOG { key l_id; field v; }
        txn add(n) {
          x := select v from LOG where true;
          insert into LOG values (l_id = uuid(), v = n);
        }
        """
        pairs = detect_anomalies(parse_program(src), EC)
        # The insert conflicts with the scan as a fracture source at most;
        # there is no rw-race because the insert can never overwrite.
        assert all("rw-race" not in p.patterns for p in pairs)


class TestOracleKnobs:
    def test_prefilter_does_not_change_results(self, courseware):
        with_filter = AnomalyOracle(EC, use_prefilter=True).analyze(courseware)
        without = AnomalyOracle(EC, use_prefilter=False).analyze(courseware)
        assert pair_keys(with_filter.pairs) == pair_keys(without.pairs)
        assert without.sat_queries >= with_filter.sat_queries

    def test_distinct_args_heuristic_monotone(self):
        src = """
        schema T { key id; field v; }
        txn move(a, b) {
          x := select v from T where id = a;
          y := select v from T where id = b;
          update T set v = 0 where id = a;
          update T set v = x.v + y.v where id = b;
        }
        """
        p = parse_program(src)
        strict = AnomalyOracle(EC, distinct_args=True).analyze(p).pairs
        loose = AnomalyOracle(EC, distinct_args=False).analyze(p).pairs
        assert pair_keys(strict) <= pair_keys(loose)

    def test_report_metadata(self, courseware):
        report = AnomalyOracle(EC).analyze(courseware)
        assert report.level == "EC"
        assert report.pairs_checked > 0
        assert report.sat_queries > 0
        assert report.elapsed_seconds >= 0

    def test_describe_format(self, courseware):
        pair = detect_anomalies(courseware, EC)[0]
        text = pair.describe()
        assert pair.txn in text and pair.c1 in text
