"""Merging and preprocessing unit tests."""


from repro.analysis import detect_anomalies
from repro.lang import ast, parse_program
from repro.repair.merging import try_merging, where_equivalent
from repro.repair.preprocess import preprocess


def commands(program, txn):
    return list(ast.iter_db_commands(program.transaction(txn)))


class TestWhereEquivalence:
    def _txn(self, src, name="f"):
        p = parse_program(src)
        return p.transaction(name)

    def test_syntactic_equality(self):
        txn = self._txn(
            "schema T { key id; field a; field b; } txn f(k) "
            "{ x := select a from T where id = k;"
            "  y := select b from T where id = k; }"
        )
        c1, c2 = list(ast.iter_db_commands(txn))
        assert where_equivalent(txn, c1, c2)

    def test_different_args_not_equivalent(self):
        txn = self._txn(
            "schema T { key id; field a; } txn f(k, j) "
            "{ x := select a from T where id = k;"
            "  y := select a from T where id = j; }"
        )
        c1, c2 = list(ast.iter_db_commands(txn))
        assert not where_equivalent(txn, c1, c2)

    def test_self_lookup_case(self):
        # y reselects x's record through a retrieved field (Figure 9).
        txn = self._txn(
            "schema T { key id; field ref_f; field a; } txn f(k) "
            "{ x := select ref_f from T where id = k;"
            "  y := select a from T where ref_f = x.ref_f; }"
        )
        c1, c2 = list(ast.iter_db_commands(txn))
        assert where_equivalent(txn, c1, c2)

    def test_assigned_key_case(self):
        # Figure 11: U2 addresses records through the value U1 assigned.
        txn = self._txn(
            "schema T { key id; field grp; field a; } txn f(k, g) "
            "{ update T set grp = g where id = k;"
            "  update T set a = 1 where grp = g; }"
        )
        c1, c2 = list(ast.iter_db_commands(txn))
        assert where_equivalent(txn, c1, c2)

    def test_different_tables_not_equivalent(self):
        txn = self._txn(
            "schema A { key id; field x; } schema B { key id; field y; } "
            "txn f(k) { a := select x from A where id = k;"
            " b := select y from B where id = k; }"
        )
        c1, c2 = list(ast.iter_db_commands(txn))
        assert not where_equivalent(txn, c1, c2)


class TestTryMerging:
    def test_merge_selects_unions_fields(self):
        p = parse_program(
            "schema T { key id; field a; field b; } txn f(k) "
            "{ x := select a from T where id = k;"
            "  y := select b from T where id = k;"
            "  return x.a + y.b; }"
        )
        merged = try_merging(p, "f", "S1", "S2")
        assert merged is not None
        cmds = commands(merged, "f")
        assert len(cmds) == 1
        assert set(cmds[0].fields) == {"a", "b"}
        # Variable y is renamed to x everywhere.
        assert merged.transaction("f").ret == ast.BinOp(
            "+", ast.At(ast.Const(1), "x", "a"), ast.At(ast.Const(1), "x", "b")
        )

    def test_merge_updates_combines_assignments(self):
        p = parse_program(
            "schema T { key id; field a; field b; } txn f(k) "
            "{ update T set a = 1 where id = k;"
            "  update T set b = 2 where id = k; }"
        )
        merged = try_merging(p, "f", "U1", "U2")
        assert merged is not None
        cmds = commands(merged, "f")
        assert len(cmds) == 1
        assert set(cmds[0].written_fields) == {"a", "b"}

    def test_no_merge_across_conflicting_command(self):
        p = parse_program(
            "schema T { key id; field a; field b; } txn f(k) "
            "{ update T set a = 1 where id = k;"
            "  x := select b from T where id = k;"
            "  update T set b = x.b + 1 where id = k; }"
        )
        # Hoisting U2 over the select of b would change what S1 reads.
        assert try_merging(p, "f", "U1", "U2") is None

    def test_no_merge_when_var_bound_between(self):
        p = parse_program(
            "schema T { key id; field a; field b; } txn f(k, j) "
            "{ update T set a = 1 where id = k;"
            "  x := select a from T where id = j;"
            "  update T set b = x.a where id = k; }"
        )
        # U2's assignment needs x, bound after U1.
        assert try_merging(p, "f", "U1", "U2") is None

    def test_no_merge_different_kinds(self, courseware):
        assert try_merging(courseware, "regSt", "U1", "S1") is None

    def test_merged_program_validates(self):
        from repro.lang.validate import validate_program

        p = parse_program(
            "schema T { key id; field a; field b; } txn f(k) "
            "{ x := select a from T where id = k;"
            "  y := select b from T where id = k;"
            "  return x.a + y.b; }"
        )
        merged = try_merging(p, "f", "S1", "S2")
        validate_program(merged)


class TestPreprocess:
    def test_splits_multi_pair_update(self, courseware):
        pairs = detect_anomalies(courseware)
        split = preprocess(courseware, pairs)
        labels = [c.label for c in commands(split, "regSt")]
        assert "U2.1" in labels and "U2.2" in labels

    def test_split_preserves_assignments(self, courseware):
        pairs = detect_anomalies(courseware)
        split = preprocess(courseware, pairs)
        cmds = {c.label: c for c in commands(split, "regSt")}
        assert cmds["U2.1"].written_fields == ("co_st_cnt",)
        assert cmds["U2.2"].written_fields == ("co_avail",)

    def test_split_program_validates(self, courseware):
        from repro.lang.validate import validate_program

        pairs = detect_anomalies(courseware)
        validate_program(preprocess(courseware, pairs))

    def test_no_pairs_no_change(self, courseware):
        assert preprocess(courseware, []) is courseware

    def test_fields_accessed_together_blocks_split(self):
        src = """
        schema T { key id; field a; field b; }
        txn w(k) { update T set a = 1, b = 2 where id = k; }
        txn r1(k) { x := select a, b from T where id = k; return x.a; }
        txn r2(k) {
          x := select a from T where id = k;
          y := select b from T where id = k;
          return x.a + y.b;
        }
        """
        p = parse_program(src)
        pairs = detect_anomalies(p)
        split = preprocess(p, pairs)
        # r1 reads a and b together in one command, so splitting w's
        # update would manufacture a brand-new fracture for r1.
        labels = [c.label for c in commands(split, "w")]
        assert labels == ["U1"]
