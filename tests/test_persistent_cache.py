"""Persistent query cache: cross-process round trips, versioned
invalidation, and the O(touched) invalidation indexes."""

import os
import sqlite3

from repro.analysis import (
    AnomalyOracle,
    EC,
    PersistentQueryCache,
    QueryCache,
    RR,
)
from repro.analysis.encoding import encoding_fingerprint
from repro.analysis.pipeline import WitnessData
from repro.lang import parse_program


def canonical(pairs):
    return [
        (
            p.txn,
            p.c1,
            p.c2,
            tuple(sorted(p.fields1)),
            tuple(sorted(p.fields2)),
            p.interferers,
            p.patterns,
        )
        for p in pairs
    ]


KEY = ("c1" * 20, "c2" * 20, "bb" * 20, "EC", True)
WITNESS = WitnessData(
    pattern="rw-race", fields1=frozenset({"x"}), fields2=frozenset({"y", "z"})
)


class TestRoundTrip:
    def test_write_reopen_hit(self, tmp_path):
        cache = PersistentQueryCache(str(tmp_path))
        cache.store(KEY, WITNESS, txns={"t1", "t2"}, tables={"A"})
        cache.store(
            KEY[:3] + ("RR", True), None, txns={"t1"}, tables={"A"}
        )
        cache.close()

        reopened = PersistentQueryCache(str(tmp_path))
        assert len(reopened) == 2
        found, witness = reopened.lookup(KEY)
        assert found and witness == WITNESS
        found, witness = reopened.lookup(KEY[:3] + ("RR", True))
        assert found and witness is None
        assert reopened.hits == 2 and reopened.misses == 0
        assert reopened.persistent_hits == 2
        reopened.close()

    def test_miss_stays_miss(self, tmp_path):
        cache = PersistentQueryCache(str(tmp_path))
        found, witness = cache.lookup(KEY)
        assert not found and witness is None
        assert cache.misses == 1
        cache.close()

    def test_ec_unsat_reused_from_disk_at_stronger_levels(self, tmp_path):
        cache = PersistentQueryCache(str(tmp_path))
        cache.store(KEY, None, txns={"t1"}, tables={"A"})
        cache.close()
        reopened = PersistentQueryCache(str(tmp_path))
        found, witness = reopened.lookup(KEY[:3] + ("RR", True))
        assert found and witness is None
        reopened.close()

    def test_version_bump_misses_and_drops(self, tmp_path):
        cache = PersistentQueryCache(str(tmp_path), version="v1")
        cache.store(KEY, WITNESS, txns={"t1"}, tables={"A"})
        cache.close()
        bumped = PersistentQueryCache(str(tmp_path), version="v2")
        assert bumped.version_evictions == 1
        assert len(bumped) == 0
        found, _ = bumped.lookup(KEY)
        assert not found
        bumped.close()
        # ...and the drop is durable: reopening at v1 finds nothing.
        back = PersistentQueryCache(str(tmp_path), version="v1")
        assert len(back) == 0
        back.close()

    def test_default_version_is_encoding_fingerprint(self, tmp_path):
        cache = PersistentQueryCache(str(tmp_path))
        assert cache.version == encoding_fingerprint()
        cache.close()

    def test_db_failure_degrades_to_memory_only(self, tmp_path):
        """A dying sqlite connection must never take the analysis down:
        the persistent tier switches off and the memory tier carries on."""
        cache = PersistentQueryCache(str(tmp_path))
        cache._conn.close()  # simulate the connection dying mid-run
        cache.store(KEY, WITNESS, txns={"t1"}, tables={"A"})  # no raise
        assert cache._db_broken
        found, witness = cache.lookup(KEY)
        assert found and witness == WITNESS
        assert cache.invalidate(txns={"t1"}) == 1
        cache.clear()
        cache.close()  # no raise either

    def test_corrupt_file_rebuilt_empty(self, tmp_path):
        path = os.path.join(str(tmp_path), "oracle_cache.sqlite")
        with open(path, "w") as fh:
            fh.write("this is not a sqlite database, not even close")
        cache = PersistentQueryCache(str(tmp_path))
        assert len(cache) == 0
        cache.store(KEY, None, txns={"t"}, tables={"A"})
        cache.close()
        reopened = PersistentQueryCache(str(tmp_path))
        assert len(reopened) == 1
        reopened.close()


class TestOracleIntegration:
    SRC = """
    schema T { key id; field v; }
    txn inc(k) {
      x := select v from T where id = k;
      update T set v = x.v + 1 where id = k;
    }
    """

    def test_second_process_warm_starts(self, tmp_path, courseware):
        cache = PersistentQueryCache(str(tmp_path))
        oracle = AnomalyOracle(EC, strategy="incremental", cache=cache)
        first = oracle.analyze(courseware)
        oracle.close()
        assert first.cache_hits == 0
        cache.close()

        # A fresh cache object over the same directory stands in for a
        # fresh process: every query must come from disk.
        warm_cache = PersistentQueryCache(str(tmp_path))
        warm_oracle = AnomalyOracle(
            EC, strategy="incremental", cache=warm_cache
        )
        second = warm_oracle.analyze(courseware)
        warm_oracle.close()
        assert second.cache_misses == 0
        assert second.sat_queries == 0
        assert warm_cache.persistent_hits == second.cache_hits
        assert canonical(first.pairs) == canonical(second.pairs)
        warm_cache.close()

    def test_levels_share_the_store(self, tmp_path, courseware):
        cache = PersistentQueryCache(str(tmp_path))
        AnomalyOracle(EC, strategy="cached", cache=cache).analyze(courseware)
        cache.close()
        warm = PersistentQueryCache(str(tmp_path))
        report = AnomalyOracle(RR, strategy="cached", cache=warm).analyze(
            courseware
        )
        # Every EC-UNSAT row serves the RR sweep straight from disk (the
        # cross-level reuse rule); SAT rows still solve at RR.
        assert warm.persistent_hits > 0
        assert report.pairs  # courseware anomalies persist under RR
        warm.close()

    def test_rmw_program_detected_through_persistent_cache(self, tmp_path):
        program = parse_program(self.SRC)
        cold = AnomalyOracle(EC).analyze(program)
        cache = PersistentQueryCache(str(tmp_path))
        AnomalyOracle(EC, strategy="cached", cache=cache).analyze(program)
        cache.close()
        warm = PersistentQueryCache(str(tmp_path))
        report = AnomalyOracle(EC, strategy="cached", cache=warm).analyze(
            program
        )
        assert canonical(report.pairs) == canonical(cold.pairs)
        assert warm.persistent_hits > 0
        warm.close()


class TestInvalidation:
    def test_invalidate_is_indexed(self, courseware, tmp_path):
        """Invalidation must consult the inverted indexes, not scan."""
        cache = QueryCache()
        AnomalyOracle(EC, strategy="cached", cache=cache).analyze(courseware)
        populated = len(cache)
        assert populated > 0
        # The index maps exactly the stored entries.
        indexed = set()
        for keys in cache._by_txn.values():
            indexed |= keys
        assert indexed == set(cache._entries)
        dropped = cache.invalidate(txns={"regSt"})
        assert 0 < dropped < populated
        assert len(cache) == populated - dropped
        # Index entries for dropped keys are gone too.
        for keys in cache._by_txn.values():
            assert not (keys - set(cache._entries))

    def test_store_overwrite_reindexes(self):
        cache = QueryCache()
        cache.store(KEY, None, txns={"a"}, tables={"T"})
        cache.store(KEY, None, txns={"b"}, tables={"U"})
        assert cache.invalidate(txns={"a"}) == 0
        assert cache.invalidate(txns={"b"}) == 1
        assert len(cache) == 0

    def test_persistent_invalidate_reaches_disk(self, tmp_path):
        cache = PersistentQueryCache(str(tmp_path))
        cache.store(KEY, WITNESS, txns={"t1"}, tables={"A"})
        cache.store(KEY[:3] + ("RR", True), None, txns={"t2"}, tables={"B"})
        cache.close()
        reopened = PersistentQueryCache(str(tmp_path))
        # Neither entry is in memory yet; invalidation must still find
        # the touched row via the participants table.
        assert reopened.invalidate(txns={"t1"}) == 1
        assert len(reopened) == 1
        reopened.close()
        final = PersistentQueryCache(str(tmp_path))
        found, _ = final.lookup(KEY)
        assert not found
        found, _ = final.lookup(KEY[:3] + ("RR", True))
        assert found
        final.close()

    def test_participants_rows_match_entries(self, tmp_path):
        cache = PersistentQueryCache(str(tmp_path))
        cache.store(KEY, WITNESS, txns={"t1", "t2"}, tables={"A"})
        cache.store(KEY, WITNESS, txns={"t3"}, tables={"A"})  # overwrite
        cache.close()
        conn = sqlite3.connect(os.path.join(str(tmp_path), "oracle_cache.sqlite"))
        rows = conn.execute(
            "SELECT kind, name FROM participants ORDER BY kind, name"
        ).fetchall()
        conn.close()
        assert rows == [("table", "A"), ("txn", "t3")]


class TestCrossThreadUse:
    def test_store_from_worker_thread_persists(self, tmp_path):
        """The API workspace (and the HTTP service on it) opens the
        cache on one thread and stores from whichever thread holds its
        lock; the sqlite tier must accept that instead of silently
        degrading to memory-only (check_same_thread)."""
        import threading

        cache = PersistentQueryCache(str(tmp_path))
        errors = []

        def store():
            try:
                cache.store(KEY, WITNESS, txns={"t1"}, tables={"A"})
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        thread = threading.Thread(target=store)
        thread.start()
        thread.join()
        assert not errors
        assert not cache._db_broken, "cross-thread store tripped _guard_db"
        cache.close()
        reopened = PersistentQueryCache(str(tmp_path))
        found, witness = reopened.lookup(KEY)
        assert found and witness == WITNESS
        assert reopened.persistent_hits == 1
        reopened.close()
