"""Experiment driver tests (fast, scaled-down configurations)."""

import pytest

from repro.corpus import COURSEWARE, SIBENCH, SMALLBANK
from repro.exp import (
    format_table,
    run_invariant_study,
    run_perf_sweep,
    run_random_search,
    run_table1_row,
)
from repro.store import PerfConfig, US_CLUSTER, VA_CLUSTER

FAST = PerfConfig(duration_ms=1500, warmup_ms=300)


class TestTable1Driver:
    def test_courseware_row(self):
        row = run_table1_row(COURSEWARE)
        assert row.ec == 5
        assert row.at == 0
        assert row.tables_before == 3
        assert row.tables_after == 2
        assert row.cc == 5 and row.rr == 5
        assert row.time_s > 0

    def test_sibench_row(self):
        row = run_table1_row(SIBENCH)
        assert (row.ec, row.at) == (1, 0)

    def test_columns_render(self):
        row = run_table1_row(SIBENCH)
        cols = row.columns()
        assert cols[0] == "SIBench"
        text = format_table(
            ["Benchmark", "#Txns", "#Tables", "EC", "AT", "CC", "RR", "Time"],
            [cols],
        )
        assert "SIBench" in text


class TestPerfDriver:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_perf_sweep(
            SMALLBANK, US_CLUSTER, client_counts=(4, 32), config=FAST, scale=8
        )

    def test_all_four_modes_present(self, sweep):
        assert set(sweep.series) == {"EC", "SC", "AT-EC", "AT-SC"}

    def test_sc_loses_to_ec(self, sweep):
        ec = sweep.series["EC"].points[-1]
        sc = sweep.series["SC"].points[-1]
        assert ec.throughput > sc.throughput
        assert ec.avg_latency_ms < sc.avg_latency_ms

    def test_at_ec_close_to_ec(self, sweep):
        """The paper: refactoring costs < 3% under EC (ours is a gain,
        since merged commands issue fewer ops); assert within a band."""
        ec = sweep.series["EC"].points[-1].throughput
        at = sweep.series["AT-EC"].points[-1].throughput
        assert at >= ec * 0.9

    def test_at_sc_beats_sc(self, sweep):
        assert sweep.gain_at_peak() > 0
        assert sweep.latency_reduction_at_peak() > 0

    def test_at_sc_below_at_ec(self, sweep):
        at_ec = sweep.series["AT-EC"].points[-1].throughput
        at_sc = sweep.series["AT-SC"].points[-1].throughput
        assert at_sc <= at_ec

    def test_va_cluster_narrows_the_gap(self):
        """Same-DC cluster: coordination is cheap, SC catches up --
        the Figure 13 (left column) effect."""
        # Low client count: latency reflects the network, not leader
        # queueing (at high client counts SC is capacity-bound everywhere).
        us = run_perf_sweep(
            SMALLBANK, US_CLUSTER, client_counts=(2,), config=FAST, scale=8
        )
        va = run_perf_sweep(
            SMALLBANK, VA_CLUSTER, client_counts=(2,), config=FAST, scale=8
        )

        def latency_penalty(sweep):
            return (
                sweep.series["SC"].points[-1].avg_latency_ms
                / sweep.series["EC"].points[-1].avg_latency_ms
            )

        assert latency_penalty(va) < latency_penalty(us)


class TestRandomSearchDriver:
    def test_random_never_beats_atropos(self):
        result = run_random_search(COURSEWARE, rounds=4, refactorings_per_round=5)
        assert result.atropos_count == 0
        assert all(c >= result.atropos_count for c in result.round_counts)

    def test_counts_recorded_per_round(self):
        result = run_random_search(SIBENCH, rounds=3, refactorings_per_round=3)
        assert len(result.round_counts) == 3


class TestInvariantDriver:
    @pytest.fixture(scope="class")
    def study(self):
        return run_invariant_study(samples=30, seed=11)

    def test_original_violates_conservation(self, study):
        assert study.original["conservation"]

    def test_original_violates_joint_view(self, study):
        assert study.original["joint-view"]

    def test_repair_fixes_joint_view(self, study):
        assert not study.repaired["joint-view"]

    def test_repaired_violates_fewer(self, study):
        assert study.violated_count("repaired") < study.violated_count("original")


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_series(self):
        from repro.exp.reporting import format_series

        assert format_series("EC", [1, 2], [3.0, 4.5]) == "EC: 1:3.0, 2:4.5"
