"""Scheduler enumeration and view-policy tests."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SemanticsError
from repro.lang import parse_program
from repro.semantics import (
    Database,
    TxnCall,
    enumerate_schedules,
    run_interleaved,
    run_serial,
)
from repro.semantics.scheduler import count_db_commands, random_schedules
from repro.semantics.views import (
    CausalPartialView,
    FullView,
    RandomPartialView,
    causal_closure,
)


class TestEnumerateSchedules:
    def test_counts_are_multinomial(self):
        # 2 txns with 2 commands each: C(4,2) = 6 interleavings.
        assert len(list(enumerate_schedules([2, 2]))) == 6

    def test_three_way(self):
        # 3 txns of 1 command: 3! = 6.
        assert len(list(enumerate_schedules([1, 1, 1]))) == 6

    def test_limit_respected(self):
        assert len(list(enumerate_schedules([3, 3], limit=4))) == 4

    def test_each_schedule_preserves_counts(self):
        for schedule in enumerate_schedules([2, 3]):
            assert schedule.count(0) == 2
            assert schedule.count(1) == 3

    def test_schedules_are_unique(self):
        schedules = list(enumerate_schedules([2, 2]))
        assert len(set(schedules)) == len(schedules)


class TestRandomSchedules:
    def test_sample_count(self):
        rng = random.Random(1)
        assert len(list(random_schedules([2, 2], rng, 10))) == 10

    def test_samples_valid(self):
        rng = random.Random(2)
        for schedule in random_schedules([1, 4], rng, 5):
            assert schedule.count(0) == 1 and schedule.count(1) == 4


class TestCountDbCommands:
    def test_straight_line(self, account_program, account_db):
        assert count_db_commands(
            account_program, TxnCall("deposit", (1, 5)), account_db
        ) == 2

    def test_data_dependent_loop(self):
        p = parse_program(
            "schema T { key id; field v; } txn f(k, n) "
            "{ iterate (n) { update T set v = iter where id = k; } }"
        )
        db = Database(p)
        db.insert("T", id=1, v=0)
        assert count_db_commands(p, TxnCall("f", (1, 3)), db) == 3
        assert count_db_commands(p, TxnCall("f", (1, 0)), db) == 0


class TestInterleavedDriver:
    def test_partial_schedule_completes(self, account_program, account_db):
        # Schedule only names the first command; the rest run to completion.
        h = run_interleaved(
            account_program, account_db,
            [TxnCall("deposit", (1, 5))],
            schedule=[0],
            policy=FullView(),
        )
        assert h.state.materialize()["ACCOUNT"][(1,)]["bal"] == 105

    def test_unknown_instance_rejected(self, account_program, account_db):
        with pytest.raises(SemanticsError):
            run_interleaved(
                account_program, account_db,
                [TxnCall("deposit", (1, 5))],
                schedule=[7],
                policy=FullView(),
            )

    @given(st.integers(0, 5))
    @settings(max_examples=10, deadline=None)
    def test_full_view_interleavings_match_some_serial(self, seed):
        """With full visibility (and absolute writes from reads *after*
        all prior writes), any interleaving of two blind writers equals a
        serial order's final state."""
        src = """
        schema T { key id; field v; }
        txn setv(k, n) { update T set v = n where id = k; }
        """
        p = parse_program(src)
        db = Database(p)
        db.insert("T", id=1, v=0)
        calls = [TxnCall("setv", (1, 10)), TxnCall("setv", (1, 20))]
        rng = random.Random(seed)
        schedule = list(next(random_schedules([1, 1], rng, 1)))
        h = run_interleaved(p, db, calls, schedule, FullView())
        final = h.state.materialize()["T"][(1,)]["v"]
        serial_finals = set()
        for order in ([0, 1], [1, 0]):
            hs = run_serial(p, db, [calls[i] for i in order])
            serial_finals.add(hs.state.materialize()["T"][(1,)]["v"])
        assert final in serial_finals


class TestCausalViews:
    def test_causal_closure_pulls_dependencies(self, account_program, account_db):
        # Run two dependent writes, then closure over the later one must
        # include the earlier one it observed.
        h = run_serial(
            account_program, account_db,
            [TxnCall("deposit", (1, 5)), TxnCall("deposit", (1, 5))],
        )
        state = h.state
        later_write = max(
            (e for e in state.events if e.is_write), key=lambda e: e.ts
        )
        closed = causal_closure(state, {later_write.eid})
        # The second deposit's write observed the first's events.
        first_write = min(
            (e for e in state.events if e.is_write), key=lambda e: e.ts
        )
        assert first_write.eid in closed

    def test_causal_policy_is_superset_of_random(self, account_program, account_db):
        state_policy = RandomPartialView(random.Random(3), p_visible=0.4)
        causal_policy = CausalPartialView(random.Random(3), p_visible=0.4)
        h = run_serial(
            account_program, account_db,
            [TxnCall("deposit", (1, 5)), TxnCall("deposit", (1, 5))],
        )
        plain = state_policy.choose_view(h.state, txn=99)
        causal = causal_policy.choose_view(h.state, txn=99)
        assert plain <= causal
