"""Static validation tests."""

import pytest

from repro.errors import ValidationError
from repro.lang import ast, parse_program, parse_where
from repro.lang.validate import well_formed_where


def expect_invalid(src, fragment):
    with pytest.raises(ValidationError) as exc:
        parse_program(src)
    assert fragment in str(exc.value)


class TestSchemaChecks:
    def test_duplicate_schema_name(self):
        expect_invalid(
            "schema T { key id; } schema T { key id; }", "duplicate schema"
        )

    def test_ref_to_unknown_table(self):
        expect_invalid(
            "schema A { key a; field x ref NOPE.f; }", "unknown table"
        )

    def test_ref_to_unknown_field(self):
        expect_invalid(
            "schema B { key b; } schema A { key a; field x ref B.nope; }",
            "unknown field",
        )

    def test_schema_without_key_rejected(self):
        with pytest.raises(ValueError):
            ast.Schema(name="T", fields=("v",), key=())

    def test_duplicate_field_rejected(self):
        with pytest.raises(ValueError):
            ast.Schema(name="T", fields=("v", "v"), key=("v",))


class TestTransactionChecks:
    def test_duplicate_txn_name(self):
        expect_invalid(
            "schema T { key id; } txn f() { skip; } txn f() { skip; }",
            "duplicate transaction",
        )

    def test_duplicate_params(self):
        expect_invalid(
            "schema T { key id; } txn f(a, a) { skip; }", "duplicate parameter"
        )

    def test_unknown_table(self):
        expect_invalid(
            "schema T { key id; } txn f(k) { update NOPE set v = 1 where id = k; }",
            "unknown table",
        )

    def test_unknown_select_field(self):
        expect_invalid(
            "schema T { key id; } txn f(k) { x := select v from T where id = k; }",
            "unknown field",
        )

    def test_unknown_where_field(self):
        expect_invalid(
            "schema T { key id; field v; } txn f(k) "
            "{ x := select v from T where nope = k; }",
            "unknown field",
        )

    def test_update_key_field_rejected(self):
        expect_invalid(
            "schema T { key id; field v; } txn f(k) "
            "{ update T set id = 1 where v = k; }",
            "key field",
        )

    def test_update_duplicate_assignment(self):
        expect_invalid(
            "schema T { key id; field v; } txn f(k) "
            "{ update T set v = 1, v = 2 where id = k; }",
            "duplicate assignment",
        )

    def test_insert_missing_key(self):
        expect_invalid(
            "schema T { key a; key b; field v; } txn f(k) "
            "{ insert into T values (a = k, v = 1); }",
            "full primary key",
        )

    def test_unbound_variable(self):
        expect_invalid(
            "schema T { key id; field v; } txn f(k) "
            "{ update T set v = x.v where id = k; }",
            "used before being bound",
        )

    def test_field_not_retrieved(self):
        expect_invalid(
            "schema T { key id; field a; field b; } txn f(k) "
            "{ x := select a from T where id = k;"
            "  update T set b = x.b where id = k; }",
            "was not retrieved",
        )

    def test_unknown_argument(self):
        expect_invalid(
            "schema T { key id; field v; } txn f(k) "
            "{ update T set v = amount where id = k; }",
            "unknown argument",
        )

    def test_iter_outside_loop(self):
        expect_invalid(
            "schema T { key id; field v; } txn f(k) "
            "{ update T set v = iter where id = k; }",
            "outside an iterate",
        )

    def test_iter_inside_loop_ok(self):
        parse_program(
            "schema T { key id; field v; } txn f(k) "
            "{ iterate (2) { update T set v = iter where id = k; } }"
        )

    def test_select_star_binds_all_fields(self):
        parse_program(
            "schema T { key id; field a; field b; } txn f(k) "
            "{ x := select * from T where id = k; return x.b; }"
        )


class TestWellFormedWhere:
    SCHEMA = ast.Schema(name="T", fields=("a", "b", "v"), key=("a", "b"))

    def test_full_key_equalities(self):
        m = well_formed_where(self.SCHEMA, parse_where("a = 1 and b = 2"))
        assert m is not None
        assert set(m) == {"a", "b"}

    def test_partial_key_rejected(self):
        assert well_formed_where(self.SCHEMA, parse_where("a = 1")) is None

    def test_non_equality_rejected(self):
        assert (
            well_formed_where(self.SCHEMA, parse_where("a = 1 and b > 2")) is None
        )

    def test_disjunction_rejected(self):
        assert (
            well_formed_where(self.SCHEMA, parse_where("a = 1 or b = 2")) is None
        )

    def test_extra_non_key_condition_rejected(self):
        assert (
            well_formed_where(
                self.SCHEMA, parse_where("a = 1 and b = 2 and v = 3")
            )
            is None
        )

    def test_duplicate_key_condition_rejected(self):
        assert (
            well_formed_where(self.SCHEMA, parse_where("a = 1 and a = 2")) is None
        )
