"""Pretty-printer tests, including a generative round-trip property."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.corpus import ALL_BENCHMARKS
from repro.lang import (
    ast,
    parse_expression,
    parse_program,
    parse_where,
    print_expression,
    print_program,
    print_where,
)

# ---------------------------------------------------------------------------
# Generative expression round-trip
# ---------------------------------------------------------------------------

_names = st.sampled_from(["a", "b", "xval", "k"])
_fields = st.sampled_from(["f", "g", "val"])
_vars = st.sampled_from(["x", "y"])


def _expr_strategy() -> st.SearchStrategy:
    base = st.one_of(
        st.integers(min_value=0, max_value=999).map(ast.Const),
        st.booleans().map(ast.Const),
        _names.map(ast.Arg),
        st.just(ast.Uuid()),
        st.tuples(_vars, _fields).map(lambda t: ast.At(ast.Const(1), *t)),
        st.tuples(st.sampled_from(["sum", "min", "max", "count", "any"]), _vars, _fields).map(
            lambda t: ast.Agg(*t)
        ),
    )

    def extend(children):
        return st.one_of(
            st.tuples(st.sampled_from(["+", "-", "*", "/"]), children, children).map(
                lambda t: ast.BinOp(*t)
            ),
            st.tuples(st.sampled_from(["<", "<=", "=", "!=", ">", ">="]), children, children).map(
                lambda t: ast.Cmp(*t)
            ),
            st.tuples(st.sampled_from(["and", "or"]), children, children).map(
                lambda t: ast.BoolOp(*t)
            ),
            children.map(ast.Not),
        )

    return st.recursive(base, extend, max_leaves=12)


class TestExpressionRoundTrip:
    @given(_expr_strategy())
    @settings(max_examples=200, deadline=None)
    def test_print_parse_identity(self, expr):
        text = print_expression(expr)
        reparsed = parse_expression(text)
        assert reparsed == expr, text


class TestWherePrinting:
    def test_cond(self):
        w = parse_where("a = 1")
        assert print_where(w) == "a = 1"

    def test_and_or_parenthesisation(self):
        w = parse_where("(a = 1 or b = 2) and c = 3")
        assert parse_where(print_where(w)) == w

    def test_true(self):
        assert print_where(ast.WhereTrue()) == "true"

    @given(st.lists(st.sampled_from(["a = 1", "b = x", "c >= 2"]), min_size=1, max_size=3))
    @settings(deadline=None)
    def test_conjunction_round_trip(self, conds):
        text = " and ".join(conds)
        w = parse_where(text)
        assert parse_where(print_where(w)) == w


class TestProgramRoundTrip:
    def test_courseware_round_trip(self, courseware):
        text = print_program(courseware)
        again = parse_program(text)
        assert print_program(again) == text

    @pytest.mark.parametrize("bench", ALL_BENCHMARKS, ids=lambda b: b.name)
    def test_corpus_round_trip(self, bench):
        program = bench.program()
        text = print_program(program)
        again = parse_program(text)
        assert print_program(again) == text

    def test_labels_omittable(self, courseware):
        text = print_program(courseware, labels=False)
        assert "// S1" not in text

    def test_serializable_prefix_printed(self, courseware):
        from dataclasses import replace

        txn = replace(courseware.transaction("getSt"), serializable=True)
        marked = courseware.replace_transaction(txn)
        assert "serializable txn getSt" in print_program(marked)

    def test_refs_printed(self, courseware):
        assert "ref EMAIL.em_id" in print_program(courseware)
