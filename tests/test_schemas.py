"""The schemas/ golden gate and the subset JSON-Schema validator."""

import json
import os

import pytest

from repro.api import (
    AnalyzeRequest,
    BenchRequest,
    RepairRequest,
    SCHEMA_VERSION,
    Workspace,
)
from repro.api.schema import (
    all_schemas,
    check_schemas,
    dump_schemas,
    iter_violations,
    schema_filename,
    validate,
)

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCHEMA_DIR = os.path.join(ROOT, "schemas")


class TestGoldenGate:
    """The committed schemas/ directory must match the live wire types;
    the same comparison runs in CI (`repro schemas --check`)."""

    def test_every_schema_is_committed_and_identical(self):
        problems = check_schemas(SCHEMA_DIR)
        assert not problems, (
            "schema drift -- bump SCHEMA_VERSION or fix the change:\n"
            + "\n".join(problems)
        )

    def test_no_orphan_goldens(self):
        expected = {schema_filename(name) for name in all_schemas()}
        committed = {f for f in os.listdir(SCHEMA_DIR) if f.endswith(".json")}
        assert committed == expected

    def test_version_is_one(self):
        assert SCHEMA_VERSION == 1
        for name in all_schemas():
            assert schema_filename(name).endswith(".v1.json")

    def test_check_reports_drift(self, tmp_path):
        dump_schemas(str(tmp_path))
        assert check_schemas(str(tmp_path)) == []
        victim = tmp_path / schema_filename("error")
        doc = json.loads(victim.read_text())
        doc["properties"]["error"]["required"] = ["code"]
        victim.write_text(json.dumps(doc))
        problems = check_schemas(str(tmp_path))
        assert problems and "drift" in problems[0]
        victim.unlink()
        problems = check_schemas(str(tmp_path))
        assert any("missing" in p for p in problems)


class TestValidator:
    def test_type_checks(self):
        ok, _ = validate({"a": 1}, {"type": "object"})
        assert ok
        ok, why = validate(1, {"type": "string"})
        assert not ok and "expected string" in why
        ok, why = validate(True, {"type": "integer"})
        assert not ok, "bool must not satisfy integer"
        ok, _ = validate(None, {"type": ["object", "null"]})
        assert ok

    def test_object_keywords(self):
        schema = {
            "type": "object",
            "properties": {"a": {"type": "integer"}},
            "required": ["a"],
            "additionalProperties": False,
        }
        assert validate({"a": 1}, schema)[0]
        assert "missing required" in validate({}, schema)[1]
        assert "unexpected property" in validate({"a": 1, "b": 2}, schema)[1]
        counters = {"type": "object", "additionalProperties": {"type": "integer"}}
        assert validate({"x": 1, "y": 2}, counters)[0]
        assert not validate({"x": "no"}, counters)[0]

    def test_arrays_and_enums(self):
        schema = {"type": "array", "items": {"enum": ["a", "b"]}}
        assert validate(["a", "b"], schema)[0]
        ok, why = validate(["a", "c"], schema)
        assert not ok and "enum" in why
        violations = list(iter_violations(["a", "c", "d"], schema))
        assert len(violations) == 2

    @pytest.mark.parametrize("name", sorted(all_schemas()))
    def test_schemas_are_self_consistent(self, name):
        """Every golden is valid JSON with the keywords the validator
        knows (guards against typos like 'requried')."""
        allowed = {
            "type", "properties", "required", "additionalProperties",
            "items", "enum",
        }

        def walk(doc):
            assert isinstance(doc, dict)
            assert set(doc) <= allowed, set(doc) - allowed
            for sub in doc.get("properties", {}).values():
                walk(sub)
            if isinstance(doc.get("items"), dict):
                walk(doc["items"])
            if isinstance(doc.get("additionalProperties"), dict):
                walk(doc["additionalProperties"])

        walk(all_schemas()[name])


class TestLiveDocumentsValidate:
    """Real wire documents must satisfy their committed schemas."""

    def committed(self, name):
        with open(os.path.join(SCHEMA_DIR, schema_filename(name))) as fh:
            return json.load(fh)

    def test_requests_validate(self):
        cases = [
            (AnalyzeRequest(benchmark="SIBench", level="RR"), "analyze_request"),
            (RepairRequest(source="schema T { key id; }"), "repair_request"),
            (BenchRequest(benchmarks=("SIBench",), search="beam"), "bench_request"),
        ]
        for request, name in cases:
            ok, why = validate(request.to_json(), self.committed(name))
            assert ok, why

    def test_results_validate(self):
        with Workspace(strategy="serial") as ws:
            analyze = ws.analyze(AnalyzeRequest(benchmark="SIBench"))
            repair = ws.repair(RepairRequest(benchmark="SIBench"))
            bench = ws.bench(BenchRequest(benchmarks=("SIBench",)))
        for result, name in (
            (analyze, "analyze_result"),
            (repair, "repair_result"),
            (bench, "bench_result"),
        ):
            payload = json.loads(json.dumps(result.to_json()))
            ok, why = validate(payload, self.committed(name))
            assert ok, why

    def test_repair_request_with_plan_validates(self):
        with Workspace(strategy="serial") as ws:
            result = ws.repair(RepairRequest(benchmark="SIBench"))
        request = RepairRequest(benchmark="SIBench", plan=result.plan)
        ok, why = validate(request.to_json(), self.committed("repair_request"))
        assert ok, why
