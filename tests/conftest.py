"""Shared fixtures: the paper's running example and helpers."""

from __future__ import annotations

import pytest

from repro.lang import parse_program
from repro.semantics.state import Database

COURSEWARE_SRC = """
schema COURSE { key co_id; field co_avail; field co_st_cnt; }
schema EMAIL { key em_id; field em_addr; }
schema STUDENT {
  key st_id;
  field st_name;
  field st_em_id ref EMAIL.em_id;
  field st_co_id ref COURSE.co_id;
  field st_reg;
}

txn getSt(id) {
  x := select * from STUDENT where st_id = id;
  y := select em_addr from EMAIL where em_id = x.st_em_id;
  z := select co_avail from COURSE where co_id = x.st_co_id;
  return y.em_addr;
}

txn setSt(id, name, email) {
  x := select st_em_id from STUDENT where st_id = id;
  update STUDENT set st_name = name where st_id = id;
  update EMAIL set em_addr = email where em_id = x.st_em_id;
}

txn regSt(id, course) {
  update STUDENT set st_co_id = course, st_reg = true where st_id = id;
  x := select co_st_cnt from COURSE where co_id = course;
  update COURSE set co_st_cnt = x.co_st_cnt + 1, co_avail = true
    where co_id = course;
}
"""

ACCOUNT_SRC = """
schema ACCOUNT { key acc_id; field bal; field owner; }

txn deposit(id, amt) {
  x := select bal from ACCOUNT where acc_id = id;
  update ACCOUNT set bal = x.bal + amt where acc_id = id;
}

txn read_bal(id) {
  x := select bal from ACCOUNT where acc_id = id;
  return x.bal;
}

txn rename(id, name) {
  update ACCOUNT set owner = name where acc_id = id;
}
"""


@pytest.fixture
def courseware():
    return parse_program(COURSEWARE_SRC)


@pytest.fixture
def account_program():
    return parse_program(ACCOUNT_SRC)


@pytest.fixture
def account_db(account_program):
    db = Database(account_program)
    db.insert("ACCOUNT", acc_id=1, bal=100, owner="ada")
    db.insert("ACCOUNT", acc_id=2, bal=50, owner="bob")
    return db
