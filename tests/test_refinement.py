"""Refinement testing (Theorems 4.1/4.2): the refactored program's final
states contain the original's, and serializable runs return equal values.

These are dynamic checks of the paper's soundness theorems: we execute
the *same* workload serially on the original program (on its database)
and on the repaired program (on the migrated database), materialise both
final states, and check the containment relation under the accumulated
value correspondences -- plus equality of transaction return values.
"""


import pytest
from hypothesis import given, settings, strategies as st

from repro.refactor import check_containment, migrate_database
from repro.repair import repair
from repro.semantics import Database, TxnCall, run_serial
from tests.conftest import COURSEWARE_SRC
from repro.lang import parse_program

N_STUDENTS = 4
N_COURSES = 2


def _courseware_db(program):
    db = Database(program)
    for co in range(N_COURSES):
        db.insert("COURSE", co_id=co, co_avail=False, co_st_cnt=0)
    for s in range(N_STUDENTS):
        db.insert("EMAIL", em_id=100 + s, em_addr=f"s{s}@host")
        db.insert(
            "STUDENT",
            st_id=s, st_name=f"n{s}", st_em_id=100 + s,
            st_co_id=s % N_COURSES, st_reg=False,
        )
    return db


@pytest.fixture(scope="module")
def repaired():
    program = parse_program(COURSEWARE_SRC)
    return program, repair(program)


# Workload step strategies.
_call = st.one_of(
    st.tuples(st.just("getSt"), st.integers(0, N_STUDENTS - 1)).map(
        lambda t: TxnCall(t[0], (t[1],))
    ),
    st.tuples(
        st.just("setSt"),
        st.integers(0, N_STUDENTS - 1),
        st.sampled_from(["ann", "bob", "cat"]),
        st.sampled_from(["a@x", "b@x"]),
    ).map(lambda t: TxnCall(t[0], t[1:])),
    st.tuples(
        st.just("regSt"),
        st.integers(0, N_STUDENTS - 1),
        st.integers(0, N_COURSES - 1),
    ).map(lambda t: TxnCall(t[0], t[1:])),
)


def _single_registration(calls):
    """At most one regSt per student.

    Known deviation (documented in EXPERIMENTS.md): Figure 3's
    'enrollment-triggered' merge narrows the course-availability update to
    the registering student's row, so when a student later re-registers
    elsewhere, the *old* course's relocated co_avail copy goes stale and
    the any-fold can no longer recover it.  The paper's refinement theorem
    implicitly assumes single-registration traces; we test exactly those.
    """
    seen = set()
    for call in calls:
        if call.name == "regSt":
            if call.args[0] in seen:
                return False
            seen.add(call.args[0])
    return True


class TestSerialRefinement:
    @given(st.lists(_call, min_size=0, max_size=6).filter(_single_registration))
    @settings(max_examples=60, deadline=None)
    def test_containment_after_any_serial_workload(self, repaired, calls):
        program, report = repaired
        db = _courseware_db(program)
        original_history = run_serial(program, db, calls)

        at_db = migrate_database(db, report.repaired_program, report.rewrites)
        at_history = run_serial(report.repaired_program, at_db, calls)

        violations = check_containment(
            program,
            original_history.state.materialize(),
            at_history.state.materialize(),
            report.correspondences,
        )
        assert violations == [], [v.describe() for v in violations]

    @given(st.lists(_call, min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_return_values_preserved(self, repaired, calls):
        program, report = repaired
        db = _courseware_db(program)
        original_history = run_serial(program, db, calls)
        at_db = migrate_database(db, report.repaired_program, report.rewrites)
        at_history = run_serial(report.repaired_program, at_db, calls)
        assert original_history.results == at_history.results


class TestInitialContainment:
    def test_migrated_database_contains_original(self, repaired):
        program, report = repaired
        db = _courseware_db(program)
        at_db = migrate_database(db, report.repaired_program, report.rewrites)
        # Materialise both initial states via empty runs.
        orig = run_serial(program, db, []).state.materialize()
        refact = run_serial(report.repaired_program, at_db, []).state.materialize()
        violations = check_containment(program, orig, refact, report.correspondences)
        assert violations == [], [v.describe() for v in violations]

    def test_containment_detects_corruption(self, repaired):
        program, report = repaired
        db = _courseware_db(program)
        at_db = migrate_database(db, report.repaired_program, report.rewrites)
        # Corrupt a moved value: containment must notice.
        at_db.tables["STUDENT"][(0,)]["st_em_addr"] = "WRONG"
        orig = run_serial(program, db, []).state.materialize()
        refact = run_serial(report.repaired_program, at_db, []).state.materialize()
        violations = check_containment(program, orig, refact, report.correspondences)
        assert violations


class TestLoggerContainment:
    SRC = """
    schema T { key id; field v; }
    txn incr(k) {
      x := select v from T where id = k;
      update T set v = x.v + 1 where id = k;
    }
    txn get(k) {
      x := select v from T where id = k;
      return x.v;
    }
    """

    @given(st.lists(st.integers(0, 2), min_size=0, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_sum_fold_reconstructs_counter(self, keys):
        program = parse_program(self.SRC)
        report = repair(program)
        db = Database(program)
        for k in range(3):
            db.insert("T", id=k, v=5)
        calls = [TxnCall("incr", (k,)) for k in keys]
        orig = run_serial(program, db, calls).state.materialize()
        at_db = migrate_database(db, report.repaired_program, report.rewrites)
        refact = run_serial(report.repaired_program, at_db, calls).state.materialize()
        violations = check_containment(program, orig, refact, report.correspondences)
        assert violations == [], [v.describe() for v in violations]

    @given(st.lists(st.integers(0, 2), min_size=0, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_reads_agree(self, keys):
        program = parse_program(self.SRC)
        report = repair(program)
        db = Database(program)
        for k in range(3):
            db.insert("T", id=k, v=5)
        calls = [TxnCall("incr", (k,)) for k in keys] + [
            TxnCall("get", (k,)) for k in range(3)
        ]
        orig = run_serial(program, db, calls)
        at_db = migrate_database(db, report.repaired_program, report.rewrites)
        refact = run_serial(report.repaired_program, at_db, calls)
        assert orig.results == refact.results
