"""Sharded warm-session workers: differential equivalence, shard
affinity, degradation, and the batched beam-search fan-out.

The differential class is this PR's acceptance gate, extending the
``tests/test_oracle_session.py`` pattern across the process boundary:
for every corpus program, every focus pair x interferer, and every
anomaly mode (EC/CC/RR/SC), the :class:`ParallelIncrementalStrategy`
verdict must equal the cold ``solve_query`` verdict, EC witnesses must
be exact, and *every* worker outcome (witness, ``solved`` flag) must
equal an in-process :class:`OracleSession` shadow replay fed the same
per-shard query sequence -- the workers run exactly the warm-session
code the in-process differential suite already validates semantically,
so outcome equality transfers those guarantees across the pool.
"""

import pytest

from repro.analysis import (
    CC,
    EC,
    OracleSession,
    RR,
    SC,
    AnomalyOracle,
    ParallelIncrementalStrategy,
    summarize_program,
)
from repro.analysis.pipeline import (
    IncrementalStrategy,
    ParallelStrategy,
    QueryPlanner,
    resolve_strategy,
    shard_of,
    solve_query,
)
from repro.corpus import ALL_BENCHMARKS, BY_NAME

ALL_LEVELS = (EC, CC, RR, SC)
WORKERS = 2


def canonical(pairs):
    return [
        (
            p.txn,
            p.c1,
            p.c2,
            tuple(sorted(p.fields1)),
            tuple(sorted(p.fields2)),
            p.interferers,
            p.patterns,
        )
        for p in pairs
    ]


class TestDifferential:
    """Worker outcomes against the cold solver and an in-process shadow
    pool, corpus-wide, all levels."""

    @pytest.mark.parametrize("bench", ALL_BENCHMARKS, ids=lambda b: b.name)
    def test_all_pairs_all_modes(self, bench):
        summaries = summarize_program(bench.program())
        planner = QueryPlanner()
        # work_stealing off: the shadow replay below needs every triple
        # to stay on its sha1 shard (a stolen chunk warms the thief's
        # pool instead).
        strategy = ParallelIncrementalStrategy(
            max_workers=WORKERS, work_stealing=False
        )
        # One shadow pool per shard, fed the exact per-shard sequence the
        # worker receives: equality proves the pool faithfully runs the
        # in-process warm-session code on every query.
        shadow_pools = {w: OracleSession() for w in range(WORKERS)}
        cold_memo = {}
        checked = 0
        try:
            for level in ALL_LEVELS:
                plan = planner.plan(summaries, level, True)
                specs = plan.queries()
                outcomes = strategy.run(specs, level, True)
                assert len(outcomes) == len(specs)
                for spec, outcome in zip(specs, outcomes):
                    if spec.cache_key in cold_memo:
                        cold = cold_memo[spec.cache_key]
                    else:
                        cold = solve_query(
                            spec.c1, spec.c2, spec.summary_b, level, True
                        )
                        cold_memo[spec.cache_key] = cold
                    checked += 1
                    # Hard gate: verdicts agree on every pair x mode.
                    assert (cold.witness is None) == (
                        outcome.witness is None
                    ), (
                        bench.name, level.name, spec.a_name,
                        spec.c1.label, spec.c2.label, spec.summary_b.name,
                    )
                    if level is EC and outcome.witness is not None:
                        # A session's first EC solve is virgin and
                        # bit-identical to cold; EC re-queries reuse the
                        # remembered model, whose witness is that one.
                        assert outcome.witness == cold.witness, (
                            bench.name, spec.a_name,
                            spec.c1.label, spec.c2.label,
                        )
                per_shard = {}
                for position, spec in enumerate(specs):
                    per_shard.setdefault(
                        shard_of(spec.cache_key, WORKERS), []
                    ).append((position, spec))
                for worker, items in per_shard.items():
                    pool = shadow_pools[worker]
                    for position, spec in items:
                        shadow = pool.solve(
                            spec.c1,
                            spec.c2,
                            spec.summary_b,
                            level,
                            True,
                            key=spec.cache_key[:3] + (True,),
                        )
                        assert shadow.witness == outcomes[position].witness, (
                            bench.name, level.name, spec.a_name,
                            spec.c1.label, spec.c2.label, spec.summary_b.name,
                        )
                        assert shadow.solved == outcomes[position].solved
        finally:
            strategy.close()
        assert checked > 0


class TestReportEquivalence:
    @pytest.mark.parametrize("name", ["Courseware", "SmallBank", "TPC-C"])
    def test_identical_pairs_vs_serial(self, name):
        program = BY_NAME[name].program()
        serial = AnomalyOracle(EC).analyze(program)
        oracle = AnomalyOracle(
            EC, strategy=ParallelIncrementalStrategy(max_workers=WORKERS)
        )
        try:
            report = oracle.analyze(program)
        finally:
            oracle.close()
        assert canonical(serial.pairs) == canonical(report.pairs)
        assert serial.pairs_checked == report.pairs_checked
        assert report.strategy == f"parallel-incremental[{WORKERS}]"

    def test_analyze_many_matches_per_program_analyze(self, courseware):
        """Regression: batched specs from several plans carry colliding
        plan-local indexes; results must land on the right specs."""
        from repro.repair.engine import repair

        repaired = repair(courseware).repaired_program
        for strategy in (
            ParallelIncrementalStrategy(max_workers=WORKERS),
            ParallelStrategy(max_workers=WORKERS),
        ):
            oracle = AnomalyOracle(EC, strategy=strategy)
            try:
                batched = oracle.analyze_many([courseware, repaired])
            finally:
                oracle.close()
            for program, report in zip([courseware, repaired], batched):
                solo = AnomalyOracle(EC).analyze(program)
                assert canonical(solo.pairs) == canonical(report.pairs)

    def test_serial_oracle_analyze_many(self, courseware):
        oracle = AnomalyOracle(EC)
        reports = oracle.analyze_many([courseware, courseware])
        solo = oracle.analyze(courseware)
        for report in reports:
            assert canonical(report.pairs) == canonical(solo.pairs)


class TestShardAffinity:
    def test_shard_routing_is_stable_and_level_independent(self, courseware):
        summaries = summarize_program(courseware)
        planner = QueryPlanner()
        by_triple = {}
        for level in ALL_LEVELS:
            for spec in planner.plan(summaries, level, True).queries():
                shard = shard_of(spec.cache_key, 4)
                assert 0 <= shard < 4
                triple = spec.cache_key[:3]
                assert by_triple.setdefault(triple, shard) == shard

    def test_sessions_never_rebuilt_cold_twice(self, courseware):
        """Level sweeps on one strategy instance reuse each triple's
        warm worker session instead of re-creating it (strict affinity
        needs work stealing off: a stolen chunk builds cold on the
        thief)."""
        strategy = ParallelIncrementalStrategy(
            max_workers=WORKERS, work_stealing=False
        )
        summaries = summarize_program(courseware)
        planner = QueryPlanner()
        total_specs = 0
        try:
            for level in ALL_LEVELS:
                specs = planner.plan(summaries, level, True).queries()
                total_specs += len(specs)
                strategy.run(specs, level, True)
            counters = strategy.counters()
        finally:
            strategy.close()
        triples = {
            spec.cache_key[:3]
            for spec in planner.plan(summaries, EC, True).queries()
        }
        # One session per distinct triple, ever -- the later level
        # sweeps only reuse; every spec still got answered.
        assert counters["created"] == len(triples)
        assert counters["reused"] == total_specs - len(triples)
        assert counters["queries"] == total_specs


class TestWorkStealing:
    """The chunked scheduler: a worker whose queue runs dry steals the
    tail of the longest queue instead of idling."""

    def test_skewed_shard_is_stolen(self, courseware, monkeypatch):
        import repro.analysis.pipeline as pipeline_module

        summaries = summarize_program(courseware)
        specs = QueryPlanner().plan(summaries, EC, True).queries()
        # Skew: route every triple to shard 0, so worker 1 starts idle
        # and can only make progress by stealing.
        monkeypatch.setattr(
            pipeline_module, "shard_of", lambda key, shards: 0
        )
        strategy = ParallelIncrementalStrategy(max_workers=WORKERS)
        try:
            outcomes = strategy.run(specs, EC, True)
            stats = strategy.shard_stats()
        finally:
            strategy.close()
        assert len(outcomes) == len(specs)
        for spec, outcome in zip(specs, outcomes):
            cold = solve_query(spec.c1, spec.c2, spec.summary_b, EC, True)
            assert (cold.witness is None) == (outcome.witness is None)
        # The idle worker stole and did real work: no worker idles
        # while another's queue is non-empty.
        assert stats["steal_count"] > 0
        by_worker = {w["worker"]: w for w in stats["workers"]}
        assert by_worker[1]["chunks"] > 0
        assert by_worker[1]["stolen_chunks"] > 0
        assert by_worker[0]["utilization"] > 0
        assert stats["scheduler_seconds"] > 0

    def test_stealing_disabled_leaves_skewed_queue_alone(
        self, courseware, monkeypatch
    ):
        import repro.analysis.pipeline as pipeline_module

        summaries = summarize_program(courseware)
        specs = QueryPlanner().plan(summaries, EC, True).queries()
        monkeypatch.setattr(
            pipeline_module, "shard_of", lambda key, shards: 0
        )
        strategy = ParallelIncrementalStrategy(
            max_workers=WORKERS, work_stealing=False
        )
        try:
            outcomes = strategy.run(specs, EC, True)
            stats = strategy.shard_stats()
        finally:
            strategy.close()
        assert len(outcomes) == len(specs)
        assert stats["steal_count"] == 0
        by_worker = {w["worker"]: w for w in stats["workers"]}
        assert by_worker[0]["chunks"] > 0
        assert by_worker[1]["chunks"] == 0

    def test_run_levels_sweep_matches_cold_verdicts(self, courseware):
        summaries = summarize_program(courseware)
        specs = QueryPlanner().plan(summaries, EC, True).queries()
        sweep = [(EC, CC, RR) for _ in specs]
        strategy = ParallelIncrementalStrategy(max_workers=WORKERS)
        try:
            swept = strategy.run_levels(specs, sweep, True)
        finally:
            strategy.close()
        assert len(swept) == len(specs)
        for spec, outs in zip(specs, swept):
            assert len(outs) == 3
            for level, outcome in zip((EC, CC, RR), outs):
                cold = solve_query(
                    spec.c1, spec.c2, spec.summary_b, level, True
                )
                assert (cold.witness is None) == (outcome.witness is None)
                if level is EC and outcome.witness is not None:
                    # The first EC solve of a virgin session matches the
                    # cold solver bit for bit.
                    assert outcome.witness == cold.witness

    def test_run_levels_degrades_in_process(self, courseware):
        summaries = summarize_program(courseware)
        specs = QueryPlanner().plan(summaries, EC, True).queries()
        sweep = [(EC, CC) for _ in specs]
        strategy = ParallelIncrementalStrategy(max_workers=1)
        try:
            swept = strategy.run_levels(specs, sweep, True)
            assert strategy._executors is None
            assert strategy.shard_stats()["steal_count"] == 0
        finally:
            strategy.close()
        assert len(swept) == len(specs)
        assert all(len(outs) == 2 for outs in swept)


class TestDegradation:
    def test_single_worker_runs_in_process(self, courseware):
        strategy = ParallelIncrementalStrategy(max_workers=1)
        oracle = AnomalyOracle(EC, strategy=strategy)
        try:
            report = oracle.analyze(courseware)
            assert strategy._executors is None  # never spun up a pool
            assert strategy.name == "parallel-incremental[in-process]"
            assert len(report.pairs) == 5
            assert strategy.counters()["created"] > 0  # fallback pool ran
        finally:
            oracle.close()

    def test_broken_pool_falls_back_to_in_process(self, courseware, monkeypatch):
        strategy = ParallelIncrementalStrategy(max_workers=WORKERS)
        spawn_attempts = []

        def explode():
            spawn_attempts.append(1)
            raise RuntimeError("pool died")

        monkeypatch.setattr(strategy, "_ensure_executors", explode)
        serial = AnomalyOracle(EC).analyze(courseware)
        oracle = AnomalyOracle(EC, strategy=strategy)
        try:
            report = oracle.analyze(courseware)
            assert canonical(report.pairs) == canonical(serial.pairs)
            # The breakage is sticky: later analyses go straight to the
            # (still warm) fallback pool instead of respawning workers.
            fallback = strategy._fallback
            assert fallback is not None
            warm_sessions = len(fallback.pool)
            assert warm_sessions > 0
            # Force the re-analysis through the strategy (the memo
            # cache would otherwise answer it without running anything).
            oracle.cache.clear()
            again = oracle.analyze(courseware)
            assert canonical(again.pairs) == canonical(serial.pairs)
            assert len(spawn_attempts) == 1
            assert strategy._fallback is fallback
            assert len(fallback.pool) == warm_sessions
            assert strategy.name == "parallel-incremental[in-process]"
        finally:
            oracle.close()


class TestWorkerEntryPoints:
    """The worker-side functions, exercised in-process (the forked
    children run exactly this code, invisible to coverage)."""

    def test_shard_worker_solve_matches_cold(self, courseware, monkeypatch):
        import repro.analysis.pipeline as pipeline_module
        from repro.analysis.pipeline import (
            _shard_worker_counters,
            _shard_worker_init,
            _shard_worker_solve,
        )

        monkeypatch.setattr(pipeline_module, "_WORKER_SESSIONS", None)
        assert _shard_worker_counters() == {}
        _shard_worker_init(64)
        summaries = summarize_program(courseware)
        specs = QueryPlanner().plan(summaries, EC, True).queries()
        payload = (
            "EC",
            True,
            True,
            [
                (position, s.c1, s.c2, s.summary_b, s.cache_key[:3] + (True,))
                for position, s in enumerate(specs)
            ],
        )
        results = _shard_worker_solve(payload)
        assert [position for position, _ in results] == list(range(len(specs)))
        for (_, outcome), spec in zip(results, specs):
            cold = solve_query(spec.c1, spec.c2, spec.summary_b, EC, True)
            assert (cold.witness is None) == (outcome.witness is None)
        counters = _shard_worker_counters()
        assert counters["queries"] == len(specs)
        monkeypatch.setattr(pipeline_module, "_WORKER_SESSIONS", None)


class TestStrategyResolutionUpdates:
    def test_parallel_incremental_names_resolve(self):
        for name in ("parallel-incremental", "parallel_incremental"):
            strategy = resolve_strategy(name, max_workers=3)
            assert isinstance(strategy, ParallelIncrementalStrategy)
            assert strategy.max_workers == 3
            strategy.close()

    def test_auto_picks_parallel_incremental_on_multicore(self):
        strategy = resolve_strategy("auto", max_workers=4)
        assert isinstance(strategy, ParallelIncrementalStrategy)
        assert strategy.max_workers == 4
        strategy.close()

    def test_auto_picks_incremental_on_one_core(self):
        strategy = resolve_strategy("auto", max_workers=1)
        assert isinstance(strategy, IncrementalStrategy)
        strategy.close()

    def test_auto_choice_recorded_in_report(self, courseware):
        oracle = AnomalyOracle(
            EC, strategy="auto", max_workers=WORKERS
        )
        try:
            report = oracle.analyze(courseware)
        finally:
            oracle.close()
        assert report.strategy == f"parallel-incremental[{WORKERS}]"


class TestBeamFanOut:
    def test_beam_search_identical_across_strategies(self, courseware):
        from repro.repair.engine import repair

        def signature(report):
            return (
                [step.kind for step in report.plan],
                canonical(report.initial_pairs),
                canonical(report.residual_pairs),
                [o.action for o in report.outcomes],
            )

        serial = repair(courseware, search="beam", width=3)
        strategy = ParallelIncrementalStrategy(max_workers=WORKERS)
        try:
            fanned = repair(
                courseware, strategy=strategy, search="beam", width=3
            )
        finally:
            strategy.close()
        assert signature(serial) == signature(fanned)

    def test_evaluate_many_matches_evaluate(self, courseware):
        from repro.repair.engine import repair
        from repro.repair.plan import PlanContext
        from repro.repair.search import CostModel

        repaired = repair(courseware).repaired_program
        model = CostModel()
        oracle = AnomalyOracle(EC, strategy="incremental")
        try:
            items = [
                (courseware, PlanContext()),
                (repaired, PlanContext()),
            ]
            batched = model.evaluate_many(items, oracle)
            for (program, ctx), (cost, pairs) in zip(items, batched):
                solo_cost, solo_pairs = model.evaluate(program, ctx, oracle)
                assert solo_cost == cost
                assert canonical(solo_pairs) == canonical(pairs)
        finally:
            oracle.close()
