"""Direct tests of the per-pair SAT encoding and its consistency axioms."""

import pytest

from repro.analysis.accesses import summarize_program
from repro.analysis.consistency import CC, EC, RR, SC
from repro.analysis.encoding import PairEncoder
from repro.lang import parse_program

FRACTURE_SRC = """
schema A { key id; field x; }
schema B { key id; field y; }
txn writer(k) {
  update A set x = 1 where id = k;
  update B set y = 1 where id = k;
}
txn reader(k) {
  a := select x from A where id = k;
  b := select y from B where id = k;
  return a.x + b.y;
}
"""

RMW_SRC = """
schema T { key id; field v; }
txn incr(k) {
  x := select v from T where id = k;
  update T set v = x.v + 1 where id = k;
}
"""

SAME_ITEM_SRC = """
schema T { key id; field v; }
txn rr(k) {
  a := select v from T where id = k;
  b := select v from T where id = k;
  return a.v - b.v;
}
txn w(k, n) { update T set v = n where id = k; }
"""


def _encoder(src, txn, c1, c2, interferer, level):
    program = parse_program(src)
    summaries = summarize_program(program)
    summary = summaries[txn]
    return PairEncoder(
        summary, summary.command(c1), summary.command(c2),
        summaries[interferer], level,
    )


class TestDisjunctCollection:
    def test_reader_pair_collects_fracture(self):
        enc = _encoder(FRACTURE_SRC, "reader", "S1", "S2", "writer", EC)
        patterns = {d.pattern for d in enc.collect_disjuncts()}
        assert "fractured-read" in patterns

    def test_writer_pair_collects_fractured_write(self):
        enc = _encoder(FRACTURE_SRC, "writer", "U1", "U2", "reader", EC)
        patterns = {d.pattern for d in enc.collect_disjuncts()}
        assert "fractured-write" in patterns

    def test_rmw_pair_collects_race(self):
        enc = _encoder(RMW_SRC, "incr", "S1", "U1", "incr", EC)
        patterns = {d.pattern for d in enc.collect_disjuncts()}
        assert "rw-race" in patterns

    def test_unrelated_interferer_yields_nothing(self):
        enc = _encoder(FRACTURE_SRC, "reader", "S1", "S2", "reader", EC)
        assert enc.collect_disjuncts() == []

    def test_disjunct_fields_are_the_conflicts(self):
        enc = _encoder(FRACTURE_SRC, "reader", "S1", "S2", "writer", EC)
        d = enc.collect_disjuncts()[0]
        assert d.fields1 == {"x"}
        assert d.fields2 == {"y"}


class TestAxiomsDecideLevels:
    @pytest.mark.parametrize(
        "level,expect_sat",
        [(EC, True), (CC, True), (RR, True), (SC, False)],
        ids=["EC", "CC", "RR", "SC"],
    )
    def test_cross_record_fracture(self, level, expect_sat):
        enc = _encoder(FRACTURE_SRC, "reader", "S1", "S2", "writer", level)
        assert (enc.solve() is not None) == expect_sat

    @pytest.mark.parametrize(
        "level,expect_sat",
        [(EC, True), (CC, True), (RR, True), (SC, False)],
        ids=["EC", "CC", "RR", "SC"],
    )
    def test_lost_update(self, level, expect_sat):
        enc = _encoder(RMW_SRC, "incr", "S1", "U1", "incr", level)
        assert (enc.solve() is not None) == expect_sat

    @pytest.mark.parametrize(
        "level,expect_sat",
        [(EC, True), (CC, True), (RR, False), (SC, False)],
        ids=["EC", "CC", "RR", "SC"],
    )
    def test_same_item_non_repeatable_read(self, level, expect_sat):
        """RR's frozen-view axiom kills exactly the same-item fracture;
        CC's monotone growth still admits the gain direction."""
        enc = _encoder(SAME_ITEM_SRC, "rr", "S1", "S2", "w", level)
        assert (enc.solve() is not None) == expect_sat


class TestWitnessReporting:
    def test_witness_names_interferer(self):
        enc = _encoder(FRACTURE_SRC, "reader", "S1", "S2", "writer", EC)
        witness = enc.solve()
        assert witness is not None
        assert witness.interferer == "writer"
        assert witness.pattern == "fractured-read"

    def test_witness_fields_union_of_true_disjuncts(self):
        enc = _encoder(FRACTURE_SRC, "reader", "S1", "S2", "writer", EC)
        witness = enc.solve()
        assert witness.fields1 <= {"x"}
        assert witness.fields2 <= {"y"}


class TestAliasTransitivityInEncoding:
    def test_constant_key_chain_blocks_witness(self):
        # c1 reads id=1, c2 reads id=2 on the same table; interferer
        # writes id=1 and id=2 in separate commands -- fine, fracture
        # possible.  But if the interferer's two writes hit id=1 and
        # id=1 (same record twice in one command set), aliasing with
        # both c1 and c2 simultaneously is impossible.
        src = """
        schema T { key id; field v; }
        txn reader() {
          a := select v from T where id = 1;
          b := select v from T where id = 2;
          return a.v + b.v;
        }
        txn writer1() {
          update T set v = 1 where id = 1;
          update T set v = 2 where id = 1;
        }
        txn writer2() {
          update T set v = 1 where id = 1;
          update T set v = 2 where id = 2;
        }
        """
        blocked = _encoder(src, "reader", "S1", "S2", "writer1", EC)
        assert blocked.solve() is None  # writer1 never touches id=2
        witnessed = _encoder(src, "reader", "S1", "S2", "writer2", EC)
        assert witnessed.solve() is not None
