"""Cooperative cancellation: ``POST /v1/jobs/<id>/cancel`` end to end.

Three paths, all terminal ``cancelled``:

- a *queued* job is cancelled immediately (no worker involved);
- a *running* job aborts at its next progress event -- the worker's
  hook polls the ``cancel_requested`` flag and raises out of the
  operation, so cancellation lands within one oracle query;
- a *terminal* job answers idempotently with its final status.
"""

import json
import time

import pytest

from repro import faults
from repro.api import AnalyzeRequest, Workspace
from repro.api.schema import all_schemas, validate
from repro.faults import FaultPlan, FaultRule
from repro.service.server import ReproService


def post(service, path, body=None):
    raw = json.dumps(body).encode() if body is not None else b""
    status, payload, _ = service.handle("POST", path, raw)
    return status, payload


def get(service, path):
    status, payload, _ = service.handle("GET", path, b"")
    return status, payload


def submit(service, benchmark="SIBench"):
    status, payload = post(
        service, "/v1/jobs", AnalyzeRequest(benchmark=benchmark).to_json()
    )
    assert status == 202, payload
    return payload["id"]


class TestQueuedCancel:
    """With no runner, jobs stay queued -- the immediate-cancel path."""

    @pytest.fixture()
    def service(self):
        svc = ReproService(start_runner=False)
        yield svc
        svc.close()

    def test_queued_job_cancels_immediately(self, service):
        job_id = submit(service)
        status, payload = post(service, f"/v1/jobs/{job_id}/cancel")
        assert status == 200
        assert payload == {"id": job_id, "status": "cancelled"}
        status, doc = get(service, f"/v1/jobs/{job_id}")
        assert doc["status"] == "cancelled"
        ok, why = validate(doc, all_schemas()["job"])
        assert ok, why

    def test_cancel_is_idempotent(self, service):
        job_id = submit(service)
        post(service, f"/v1/jobs/{job_id}/cancel")
        status, payload = post(service, f"/v1/jobs/{job_id}/cancel")
        assert status == 200
        assert payload["status"] == "cancelled"

    def test_cancel_unknown_job_is_404(self, service):
        status, payload = post(service, "/v1/jobs/nope/cancel")
        assert status == 404
        assert payload["error"]["code"] == "job-not-found"

    def test_cancel_requires_post(self, service):
        job_id = submit(service)
        status, payload = get(service, f"/v1/jobs/{job_id}/cancel")
        assert status == 405

    def test_cancelled_jobs_are_pruned_as_terminal(self, service):
        """The retention fix: cancelled rows age out like done/failed."""
        job_id = submit(service)
        post(service, f"/v1/jobs/{job_id}/cancel")
        service.store.max_finished = 0
        assert service.store.prune() == 1
        status, _ = get(service, f"/v1/jobs/{job_id}")
        assert status == 404

    def test_cancel_bypasses_admission(self, service):
        """Cancels shed work; a draining server must still take them."""
        job_id = submit(service)
        service.admission.draining = True
        try:
            status, payload = post(service, f"/v1/jobs/{job_id}/cancel")
        finally:
            service.admission.draining = False
        assert status == 200, payload
        assert payload["status"] == "cancelled"


class TestRunningCancel:
    def test_running_job_lands_cancelled(self):
        """Slow the solver down (seeded delay faults), catch the job
        mid-run, cancel, and watch it land terminal ``cancelled`` --
        the acceptance criterion for cooperative cancellation."""
        plan = FaultPlan(
            0,
            [
                FaultRule(
                    site="solver.propagate", action="delay",
                    p=1.0, times=0, delay_s=0.02,
                )
            ],
        )
        faults.activate(plan)
        # The incremental strategy solves in *this* process, where the
        # delay plan is active -- an auto/parallel workspace would do
        # its solver work in pool processes the plan never slows down,
        # and the job could outrun the cancel.
        workspace = Workspace(strategy="incremental")
        service = ReproService(workspace)
        try:
            job_id = submit(service, benchmark="TPC-C")
            deadline = time.monotonic() + 60
            status_seen = None
            while time.monotonic() < deadline:
                _, doc = get(service, f"/v1/jobs/{job_id}")
                status_seen = doc["status"]
                if status_seen != "queued":
                    break
                time.sleep(0.005)
            assert status_seen == "running", (
                f"job never observed running (last: {status_seen})"
            )
            status, payload = post(service, f"/v1/jobs/{job_id}/cancel")
            assert status == 200
            assert payload["status"] == "cancelling"
            while time.monotonic() < deadline:
                _, doc = get(service, f"/v1/jobs/{job_id}")
                if doc["status"] in ("done", "failed", "cancelled"):
                    break
                time.sleep(0.01)
            assert doc["status"] == "cancelled", doc["status"]
            stages = [e["stage"] for e in doc["events"]]
            assert "job.cancelled" in stages
        finally:
            faults.deactivate()
            service.close()
            workspace.close()
