"""Cross-module integration: the full pipeline on every benchmark.

For each corpus benchmark: repair, migrate the populated database to the
refactored layout, dry-run every transaction of both programs to build
operation profiles, and check initial-state containment.  This exercises
the exact path the performance experiments take, for all nine benchmarks
(the figures only sweep three).
"""

import random

import pytest

from repro.corpus import ALL_BENCHMARKS
from repro.refactor import check_containment, migrate_database
from repro.repair import repair
from repro.semantics import run_serial
from repro.store.profile import profile_program, sample_calls_for

IDS = [b.name for b in ALL_BENCHMARKS]


@pytest.fixture(scope="module")
def pipelines():
    out = {}
    rng = random.Random(17)
    for bench in ALL_BENCHMARKS:
        program = bench.program()
        report = repair(program)
        db = bench.database(scale=8)
        at_db = migrate_database(db, report.repaired_program, report.rewrites)
        calls = sample_calls_for(bench, rng, 8)
        out[bench.name] = (bench, program, report, db, at_db, calls)
    return out


@pytest.mark.parametrize("name", IDS)
class TestFullPipeline:
    def test_original_profiles_build(self, pipelines, name):
        bench, program, report, db, at_db, calls = pipelines[name]
        profiles = profile_program(program, db, calls)
        assert set(profiles) == {t.name for t in program.transactions}
        assert all(p.ops for p in profiles.values())

    def test_refactored_profiles_build(self, pipelines, name):
        bench, program, report, db, at_db, calls = pipelines[name]
        profiles = profile_program(report.repaired_program, at_db, calls)
        assert set(profiles) == {t.name for t in program.transactions}

    def test_refactoring_never_inflates_reads(self, pipelines, name):
        """Merged/redirected programs issue at most a couple more ops
        (log seeding) and usually fewer."""
        bench, program, report, db, at_db, calls = pipelines[name]
        before = profile_program(program, db, calls)
        after = profile_program(report.repaired_program, at_db, calls)
        total_before = sum(len(p.ops) for p in before.values())
        total_after = sum(len(p.ops) for p in after.values())
        assert total_after <= total_before + 2

    def test_initial_state_containment(self, pipelines, name):
        bench, program, report, db, at_db, calls = pipelines[name]
        orig = run_serial(program, db, []).state.materialize()
        refact = run_serial(
            report.repaired_program, at_db, []
        ).state.materialize()
        violations = check_containment(
            program, orig, refact, report.correspondences
        )
        assert violations == [], [v.describe() for v in violations][:5]

    def test_at_sc_variant_flags_match_residual(self, pipelines, name):
        bench, program, report, db, at_db, calls = pipelines[name]
        flagged = {
            t.name
            for t in report.serializable_variant().transactions
            if t.serializable
        }
        residual_txns = {p.txn for p in report.residual_pairs}
        assert flagged == residual_txns
