"""Access-summary and aliasing tests."""


from repro.analysis.accesses import rmw_field, summarize_program
from repro.analysis.aliasing import Alias, alias_commands
from repro.lang import ast, parse_program


class TestSummaries:
    def test_select_reads_where_and_selected(self, courseware):
        summary = summarize_program(courseware)["getSt"]
        s1 = summary.command("S1")
        assert s1.kind == "select"
        assert s1.table == "STUDENT"
        assert "st_id" in s1.read_fields
        assert "st_name" in s1.read_fields  # via SELECT *

    def test_update_write_fields(self, courseware):
        summary = summarize_program(courseware)["setSt"]
        u1 = summary.command("U1")
        assert u1.write_fields == ("st_name",)
        assert u1.read_fields == ("st_id",)

    def test_key_exprs_for_well_formed(self, courseware):
        summary = summarize_program(courseware)["getSt"]
        s1 = summary.command("S1")
        assert s1.key_exprs is not None
        assert dict(s1.key_exprs)["st_id"] == ast.Arg("id")

    def test_scan_has_no_key_exprs(self):
        p = parse_program(
            "schema T { key id; field grp; field v; } txn f(g) "
            "{ x := select v from T where grp = g; return sum(x.v); }"
        )
        info = summarize_program(p)["f"].command("S1")
        assert info.key_exprs is None

    def test_insert_uuid_key_flag(self):
        p = parse_program(
            "schema T { key id; field v; } txn f(n) "
            "{ insert into T values (id = uuid(), v = n); }"
        )
        info = summarize_program(p)["f"].command("I1")
        assert info.uuid_key
        assert "alive" in info.write_fields

    def test_loop_and_branch_flags(self):
        p = parse_program(
            "schema T { key id; field v; } txn f(k) "
            "{ iterate (2) { update T set v = iter where id = k; } "
            "  if (k > 0) { x := select v from T where id = k; } }"
        )
        summary = summarize_program(p)["f"]
        assert summary.command("U1").in_loop
        assert summary.command("S1").in_branch

    def test_ordered_pairs_count(self, courseware):
        summary = summarize_program(courseware)["getSt"]
        assert len(summary.ordered_pairs()) == 3  # C(3, 2)

    def test_bindings(self, courseware):
        summary = summarize_program(courseware)["getSt"]
        assert summary.binding_of("x") == "S1"
        assert summary.binding_of("nope") is None


class TestRmwDetection:
    def test_increment_is_rmw(self, courseware):
        summary = summarize_program(courseware)["regSt"]
        read = summary.command("S1")
        write = summary.command("U2")
        assert rmw_field(summary, read, write) == "co_st_cnt"

    def test_blind_write_is_not_rmw(self, courseware):
        summary = summarize_program(courseware)["setSt"]
        read = summary.command("S1")
        write = summary.command("U1")  # st_name = name (argument)
        assert rmw_field(summary, read, write) is None

    def test_cross_field_flow_is_not_rmw(self):
        p = parse_program(
            "schema T { key id; field a; field b; } txn f(k) "
            "{ x := select a from T where id = k;"
            "  update T set b = x.a where id = k; }"
        )
        summary = summarize_program(p)["f"]
        assert rmw_field(summary, summary.command("S1"), summary.command("U1")) is None


class TestAliasing:
    def _infos(self, src, txn="f"):
        p = parse_program(src)
        return p, summarize_program(p)[txn]

    def test_different_tables_never(self):
        p, s = self._infos(
            "schema A { key id; field x; } schema B { key id; field y; }"
            "txn f(k) { a := select x from A where id = k;"
            " b := select y from B where id = k; }"
        )
        assert alias_commands(s.command("S1"), s.command("S2"), True) is Alias.NEVER

    def test_same_key_expr_always(self):
        p, s = self._infos(
            "schema T { key id; field x; field y; }"
            "txn f(k) { a := select x from T where id = k;"
            " b := select y from T where id = k; }"
        )
        assert alias_commands(s.command("S1"), s.command("S2"), True) is Alias.ALWAYS

    def test_distinct_constants_never(self):
        p, s = self._infos(
            "schema T { key id; field x; }"
            "txn f() { a := select x from T where id = 1;"
            " b := select x from T where id = 2; }"
        )
        assert alias_commands(s.command("S1"), s.command("S2"), True) is Alias.NEVER

    def test_equal_constants_always(self):
        p, s = self._infos(
            "schema T { key id; field x; }"
            "txn f() { a := select x from T where id = 7;"
            " b := select x from T where id = 7; }"
        )
        assert alias_commands(s.command("S1"), s.command("S2"), True) is Alias.ALWAYS

    def test_distinct_args_same_instance(self):
        p, s = self._infos(
            "schema T { key id; field x; }"
            "txn f(a, b) { u := select x from T where id = a;"
            " v := select x from T where id = b; }"
        )
        assert alias_commands(s.command("S1"), s.command("S2"), True) is Alias.NEVER
        assert (
            alias_commands(s.command("S1"), s.command("S2"), True, distinct_args=False)
            is Alias.MAYBE
        )

    def test_cross_instance_args_maybe(self):
        p, s = self._infos(
            "schema T { key id; field x; }"
            "txn f(a) { u := select x from T where id = a;"
            " update T set x = 1 where id = a; }"
        )
        # Across two instances the arguments may coincide.
        assert alias_commands(s.command("S1"), s.command("U1"), False) is Alias.MAYBE

    def test_scan_maybe_aliases(self):
        p, s = self._infos(
            "schema T { key id; field grp; field x; }"
            "txn f(g, k) { u := select x from T where grp = g;"
            " update T set x = 1 where id = k; }"
        )
        assert alias_commands(s.command("S1"), s.command("U1"), True) is Alias.MAYBE

    def test_uuid_insert_never_aliases_write(self):
        p, s = self._infos(
            "schema T { key id; field x; }"
            "txn f(k) { insert into T values (id = uuid(), x = 1);"
            " update T set x = 2 where id = k; }"
        )
        assert alias_commands(s.command("I1"), s.command("U1"), True) is Alias.NEVER

    def test_uuid_insert_may_alias_scan(self):
        p, s = self._infos(
            "schema T { key id; field grp; field x; }"
            "txn f(g) { insert into T values (id = uuid(), grp = g, x = 1);"
            " u := select x from T where grp = g; }"
        )
        assert alias_commands(s.command("I1"), s.command("S1"), True) is Alias.MAYBE
