"""The rewrite-plan IR: step protocol, JSON round-trips, replay fidelity.

The load-bearing property (PR acceptance gate): for every corpus
benchmark, the plan emitted by the default greedy repair, serialized to
JSON and parsed back, replayed on the pristine program, reproduces the
engine's repaired program *byte-for-byte* via the printer -- including
chained-merge label renaming, which is where the old in-place engine
kept private state.
"""

import json

import pytest

from repro.analysis import AnomalyOracle
from repro.corpus import ALL_BENCHMARKS
from repro.errors import PlanError
from repro.lang import ast, parse_program, print_program
from repro.repair import (
    BeamSearch,
    CostModel,
    GreedySearch,
    IntroFieldStep,
    IntroSchemaStep,
    LoggerStep,
    MergeStep,
    PlanContext,
    PostprocessStep,
    RandomSearch,
    RedirectStep,
    RewritePlan,
    RewriteStep,
    SplitStep,
    repair,
    replay_plan,
    resolve_search,
)


class TestStepJson:
    STEPS = [
        SplitStep("regSt", "U2", (("co_st_cnt",), ("co_avail",))),
        MergeStep("getSt", "S1", "S2"),
        RedirectStep("EMAIL", "STUDENT", ("em_addr",)),
        LoggerStep("COURSE", "co_st_cnt"),
        IntroSchemaStep("AUDIT", ("a_id",), ("a_note",)),
        IntroFieldStep("STUDENT", "st_flags"),
        IntroFieldStep("STUDENT", "st_em_id2", ref=("EMAIL", "em_id")),
        PostprocessStep(),
    ]

    @pytest.mark.parametrize("step", STEPS, ids=lambda s: s.kind)
    def test_step_round_trips(self, step):
        data = json.loads(json.dumps(step.to_json()))
        assert RewriteStep.from_json(data) == step

    def test_every_step_explains(self):
        for step in self.STEPS:
            assert isinstance(step.explain(), str) and step.explain()

    def test_unknown_kind_rejected(self):
        with pytest.raises(PlanError, match="unknown plan step kind"):
            RewriteStep.from_json({"step": "teleport"})

    def test_malformed_step_rejected(self):
        with pytest.raises(PlanError, match="malformed merge step"):
            RewriteStep.from_json({"step": "merge", "txn": "t"})

    def test_plan_version_gate(self):
        with pytest.raises(PlanError, match="version"):
            RewritePlan.from_json({"version": 99, "steps": []})

    def test_plan_loads_rejects_non_object(self):
        with pytest.raises(PlanError):
            RewritePlan.loads("[1, 2]")
        with pytest.raises(PlanError):
            RewritePlan.loads("{not json")


class TestPlanContext:
    def test_chained_renames_resolve(self):
        ctx = PlanContext()
        ctx.note_merge("t", "S1", "S2")
        ctx.note_merge("t", "S1", "S3")
        ctx.note_merge("u", "S9", "S1")  # other txn: independent namespace
        assert ctx.current("t", "S2") == "S1"
        assert ctx.current("t", "S3") == "S1"
        assert ctx.current("t", "S1") == "S1"
        assert ctx.current("u", "S1") == "S9"

    def test_clone_is_independent(self):
        ctx = PlanContext()
        ctx.note_merge("t", "A", "B")
        twin = ctx.clone()
        twin.note_merge("t", "A", "C")
        assert ctx.current("t", "C") == "C"
        assert twin.current("t", "C") == "A"


class TestReplayFidelity:
    """Acceptance gate: JSON round-trip + replay == engine output."""

    @pytest.mark.parametrize("bench", ALL_BENCHMARKS, ids=lambda b: b.name)
    def test_corpus_plan_replays_byte_for_byte(self, bench):
        program = bench.program()
        report = repair(program)
        # Serialize through actual JSON text, not just dict round-trip.
        plan = RewritePlan.loads(report.plan.dumps())
        assert plan == report.plan
        replayed = replay_plan(program, plan)
        assert print_program(replayed.repaired_program) == print_program(
            report.repaired_program
        )
        assert replayed.rewrites == report.rewrites
        assert replayed.correspondences == report.correspondences

    def test_courseware_chained_merge_labels(self, courseware):
        """getSt's repair merges S2 then S3 into S1: the second merge's
        pair still names S2-era labels, so replay must thread renames."""
        report = repair(courseware)
        merges = [s for s in report.plan if isinstance(s, MergeStep)]
        assert len(merges) >= 2
        get_st = [m for m in merges if m.txn == "getSt"]
        assert {m.label1 for m in get_st} == {"S1"}
        # Replay on pristine program reproduces the merged getSt exactly.
        replayed = report.plan.apply(courseware)
        txn = replayed.program.transaction("getSt")
        cmds = list(ast.iter_db_commands(txn))
        assert len(cmds) == 1 and isinstance(cmds[0], ast.Select)
        assert replayed.context.current("getSt", "S2") == "S1"
        assert replayed.context.current("getSt", "S3") == "S1"

    def test_replay_on_wrong_program_raises(self, courseware):
        report = repair(courseware)
        stranger = parse_program(
            "schema T { key id; field v; }\n"
            "txn r(k) { x := select v from T where id = k; return x.v; }\n"
        )
        with pytest.raises(PlanError):
            report.plan.apply(stranger)

    def test_plan_explain_lists_every_step(self, courseware):
        report = repair(courseware)
        text = report.plan.explain()
        assert len(text.splitlines()) == len(report.plan)


class TestSearchStrategies:
    def test_resolve_search_names_and_instances(self):
        assert isinstance(resolve_search("greedy"), GreedySearch)
        assert isinstance(resolve_search("beam", width=2), BeamSearch)
        assert isinstance(resolve_search("random", rounds=1), RandomSearch)
        searcher = GreedySearch()
        assert resolve_search(searcher) is searcher
        with pytest.raises(ValueError):
            resolve_search("exhaustive")
        with pytest.raises(ValueError):
            resolve_search(searcher, width=2)
        with pytest.raises(TypeError):
            resolve_search(42)

    def test_greedy_matches_engine_contract(self, courseware):
        """The greedy searcher reproduces the historical outcomes."""
        report = repair(courseware, search="greedy")
        assert len(report.initial_pairs) == 5
        assert report.residual_pairs == []
        actions = {o.action for o in report.outcomes}
        assert actions == {"redirected+merged", "logged", "merged"}

    def test_beam_repairs_courseware(self, courseware):
        report = repair(
            courseware, strategy="incremental", search="beam", width=3
        )
        assert report.residual_pairs == []
        assert len(report.repaired_program.schemas) == 2
        assert report.strategy == "beam"
        # The winning plan replays to the same program.
        replayed = report.plan.apply(courseware)
        assert print_program(replayed.program) == print_program(
            report.repaired_program
        )

    def test_beam_width_one_is_cost_checked_greedy(self, courseware):
        report = repair(courseware, strategy="incremental", search="beam", width=1)
        assert report.residual_pairs == []

    def test_beam_rejects_bad_width(self):
        with pytest.raises(ValueError):
            BeamSearch(width=0)

    def test_random_search_deterministic_per_seed(self, courseware):
        oracle = AnomalyOracle()
        a = RandomSearch(rounds=3, steps_per_round=4, seed=7).search(
            courseware, oracle
        )
        b = RandomSearch(rounds=3, steps_per_round=4, seed=7).search(
            courseware, oracle
        )
        assert a.extras["round_counts"] == b.extras["round_counts"]
        assert a.plan == b.plan

    def test_random_plan_replays(self, account_program):
        oracle = AnomalyOracle()
        result = RandomSearch(rounds=5, steps_per_round=6, seed=3).search(
            account_program, oracle
        )
        replayed = result.plan.apply(account_program)
        assert print_program(replayed.program) == print_program(
            result.repaired_program
        )


class TestCostModel:
    def test_score_prefers_fewer_anomalies(self, courseware):
        oracle = AnomalyOracle()
        model = CostModel()
        before = model.score(courseware, PlanContext(), oracle)
        report = repair(courseware)
        after = model.score(
            report.repaired_program, PlanContext(), oracle
        )
        assert after < before

    def test_schema_growth_is_priced(self, courseware):
        oracle = AnomalyOracle()
        cheap = CostModel(anomaly_weight=0.0, table_weight=1.0)
        report = repair(courseware)
        # Courseware's repair shrinks 3 tables to 2: lower table cost.
        assert cheap.score(
            report.repaired_program, PlanContext(), oracle
        ) < cheap.score(courseware, PlanContext(), oracle)
