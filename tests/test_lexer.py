"""Tokenizer unit tests."""

import pytest

from repro.errors import ParseError
from repro.lang.lexer import Token, tokenize


def kinds(src):
    return [t.kind for t in tokenize(src)]


def values(src):
    return [t.value for t in tokenize(src) if t.kind != "eof"]


class TestBasicTokens:
    def test_empty_input_yields_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind == "eof"

    def test_identifier(self):
        toks = tokenize("st_name")
        assert toks[0].kind == "ident"
        assert toks[0].value == "st_name"

    def test_keyword_recognised(self):
        assert tokenize("select")[0].kind == "keyword"

    def test_keyword_prefix_is_identifier(self):
        assert tokenize("selector")[0].kind == "ident"

    def test_integer(self):
        tok = tokenize("12345")[0]
        assert tok.kind == "int"
        assert tok.value == "12345"

    def test_single_quoted_string(self):
        tok = tokenize("'hello world'")[0]
        assert tok.kind == "string"
        assert tok.value == "hello world"

    def test_double_quoted_string(self):
        assert tokenize('"hi"')[0].value == "hi"

    def test_unterminated_string_raises(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_string_with_newline_raises(self):
        with pytest.raises(ParseError):
            tokenize("'a\nb'")

    def test_unknown_character_raises(self):
        with pytest.raises(ParseError):
            tokenize("€")


class TestSymbols:
    def test_assign_symbol(self):
        assert values("x := 1") == ["x", ":=", "1"]

    def test_comparison_operators(self):
        assert values("<= >= != < > =") == ["<=", ">=", "!=", "<", ">", "="]

    def test_double_equals(self):
        assert values("a == b") == ["a", "==", "b"]

    def test_arithmetic(self):
        assert values("a + b * c / d - e") == ["a", "+", "b", "*", "c", "/", "d", "-", "e"]

    def test_punctuation(self):
        assert values("(x, y);") == ["(", "x", ",", "y", ")", ";"]


class TestComments:
    def test_line_comment_skipped(self):
        assert values("a // comment here\nb") == ["a", "b"]

    def test_hash_comment_skipped(self):
        assert values("a # comment\nb") == ["a", "b"]

    def test_comment_at_end_of_input(self):
        assert values("a // trailing") == ["a"]


class TestPositions:
    def test_line_numbers_advance(self):
        toks = tokenize("a\nb\nc")
        assert [t.line for t in toks[:3]] == [1, 2, 3]

    def test_column_numbers(self):
        toks = tokenize("ab cd")
        assert toks[0].column == 1
        assert toks[1].column == 4

    def test_parse_error_carries_position(self):
        try:
            tokenize("x\n  €")
        except ParseError as err:
            assert err.line == 2
        else:
            pytest.fail("expected ParseError")


class TestTokenHelpers:
    def test_is_symbol(self):
        tok = Token("symbol", ";", 1, 1)
        assert tok.is_symbol(";")
        assert tok.is_symbol(",", ";")
        assert not tok.is_symbol(",")

    def test_is_keyword(self):
        tok = Token("keyword", "select", 1, 1)
        assert tok.is_keyword("select")
        assert not tok.is_keyword("update")
