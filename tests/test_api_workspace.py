"""The repro.api façade: Workspace, wire types, errors, progress."""

import json

import pytest

import repro
from repro.analysis import AnomalyOracle, CC
from repro.api import (
    AnalyzeRequest,
    AnalyzeResult,
    BenchRequest,
    InvalidRequestError,
    PairData,
    RepairRequest,
    RepairResult,
    SchemaVersionError,
    UnknownBenchmarkError,
    Workspace,
    decode_request,
    requested_strategy,
)
from repro.corpus import BY_NAME
from repro.errors import ParseError, ReproError
from repro.lang import print_program


class TestRequestDecoding:
    def test_round_trip(self):
        req = AnalyzeRequest(benchmark="SIBench", level="CC")
        assert AnalyzeRequest.from_json(json.loads(json.dumps(req.to_json()))) == req
        rreq = RepairRequest(source="schema T { key id; }", search="beam")
        assert RepairRequest.from_json(rreq.to_json()) == rreq
        breq = BenchRequest(benchmarks=("SIBench", "Courseware"))
        assert BenchRequest.from_json(breq.to_json()) == breq

    def test_wrong_version_is_schema_version_error(self):
        data = AnalyzeRequest(benchmark="SIBench").to_json()
        data["version"] = 2
        with pytest.raises(SchemaVersionError) as exc:
            AnalyzeRequest.from_json(data)
        assert exc.value.code == "unsupported-version"

    def test_wrong_kind_unknown_field_and_bad_enum(self):
        good = AnalyzeRequest(benchmark="SIBench").to_json()
        bad_kind = dict(good, kind="repair_request")
        with pytest.raises(InvalidRequestError):
            AnalyzeRequest.from_json(bad_kind)
        with pytest.raises(InvalidRequestError, match="unknown field"):
            AnalyzeRequest.from_json(dict(good, nope=1))
        with pytest.raises(InvalidRequestError, match="level"):
            AnalyzeRequest.from_json(dict(good, level="XX"))
        with pytest.raises(InvalidRequestError, match="use_prefilter"):
            AnalyzeRequest.from_json(dict(good, use_prefilter="yes"))

    def test_decode_request_dispatch(self):
        req = decode_request(RepairRequest(benchmark="SIBench").to_json())
        assert isinstance(req, RepairRequest)
        with pytest.raises(InvalidRequestError, match="unknown request kind"):
            decode_request({"version": 1, "kind": "nope"})
        with pytest.raises(InvalidRequestError):
            decode_request("not an object")

    def test_result_round_trip(self):
        with Workspace(strategy="serial") as ws:
            result = ws.analyze(AnalyzeRequest(benchmark="SIBench"))
        again = AnalyzeResult.from_json(json.loads(json.dumps(result.to_json())))
        assert again == result

    def test_result_decoding_is_strict_too(self):
        """Results reject unknown fields and missing schema-required
        lists, same as requests -- a drifted server response must fail
        loudly, not round-trip as a truncated verdict."""
        with Workspace(strategy="serial") as ws:
            doc = ws.analyze(AnalyzeRequest(benchmark="SIBench")).to_json()
        with pytest.raises(InvalidRequestError, match="unknown field"):
            AnalyzeResult.from_json(dict(doc, bogus=1))
        missing = dict(doc)
        del missing["pairs"]
        with pytest.raises(InvalidRequestError, match="pairs"):
            AnalyzeResult.from_json(missing)
        pair = dict(doc["pairs"][0])
        del pair["fields1"]
        with pytest.raises(InvalidRequestError, match="fields1"):
            AnalyzeResult.from_json(dict(doc, pairs=[pair]))


class TestErrorCodes:
    def test_every_library_error_has_a_stable_code(self):
        from repro import errors

        seen = set()
        for name in dir(errors):
            cls = getattr(errors, name)
            if isinstance(cls, type) and issubclass(cls, ReproError):
                assert cls.code and cls.code == cls.code.lower()
                seen.add(cls.code)
        assert "parse-error" in seen and "plan-error" in seen

    def test_api_errors_extend_repro_error(self):
        assert issubclass(InvalidRequestError, ReproError)
        assert issubclass(UnknownBenchmarkError, InvalidRequestError)

    def test_error_payload_shape(self):
        payload = ParseError("bad", line=2, column=3).to_payload()
        assert payload == {"error": {"code": "parse-error", "message": "2:3: bad"}}


class TestWorkspace:
    def test_analyze_matches_direct_oracle(self):
        program = BY_NAME["SIBench"].program()
        direct = AnomalyOracle().analyze(program)
        with Workspace(strategy="serial") as ws:
            result = ws.analyze(AnalyzeRequest(benchmark="SIBench"))
        assert result.pairs == tuple(PairData.from_pair(p) for p in direct.pairs)
        assert result.pairs_checked == direct.pairs_checked

    def test_repair_matches_direct_library_call(self):
        program = BY_NAME["Courseware"].program()
        direct = repro.repair(program)
        with Workspace(strategy="serial") as ws:
            result = ws.repair(RepairRequest(benchmark="Courseware"))
        assert result.repaired_program == print_program(direct.repaired_program)
        assert result.plan == direct.plan.to_json()
        assert result.serializable_variant == print_program(
            direct.serializable_variant()
        )

    def test_incremental_strategy_same_verdicts(self):
        with Workspace(strategy="serial") as serial_ws, Workspace(
            strategy="incremental"
        ) as warm_ws:
            req = RepairRequest(benchmark="SIBench")
            cold = serial_ws.repair(req)
            warm = warm_ws.repair(req)
        assert warm.repaired_program == cold.repaired_program
        assert warm.plan == cold.plan
        assert warm.strategy == "incremental"

    def test_level_threading(self):
        program = BY_NAME["Courseware"].program()
        direct = AnomalyOracle(CC).analyze(program)
        with Workspace(strategy="serial") as ws:
            result = ws.analyze(AnalyzeRequest(benchmark="Courseware", level="CC"))
        assert result.level == "CC"
        assert len(result.pairs) == len(direct.pairs)

    def test_repair_request_level_is_threaded(self):
        """A CC repair request must actually repair at CC, not EC."""
        from repro.corpus import BY_NAME

        program = BY_NAME["Courseware"].program()
        direct = repro.repair(program, level=CC)
        with Workspace(strategy="serial") as ws:
            result = ws.repair(RepairRequest(benchmark="Courseware", level="CC"))
        assert len(result.initial_pairs) == len(direct.initial_pairs)
        assert result.repaired_program == print_program(direct.repaired_program)

    def test_replay_through_plan(self):
        with Workspace(strategy="serial") as ws:
            first = ws.repair(RepairRequest(benchmark="SIBench"))
            again = ws.repair(
                RepairRequest(benchmark="SIBench", plan=first.plan)
            )
        assert again.strategy == "replay"
        assert again.repaired_program == first.repaired_program

    def test_source_xor_benchmark(self):
        with Workspace(strategy="serial") as ws:
            with pytest.raises(InvalidRequestError, match="exactly one"):
                ws.analyze(AnalyzeRequest())
            with pytest.raises(InvalidRequestError, match="exactly one"):
                ws.analyze(
                    AnalyzeRequest(source="schema T { key id; }", benchmark="SIBench")
                )

    def test_unknown_benchmark_code(self):
        with Workspace(strategy="serial") as ws:
            with pytest.raises(UnknownBenchmarkError) as exc:
                ws.repair(RepairRequest(benchmark="Nope"))
        assert exc.value.code == "unknown-benchmark"

    def test_parse_error_surfaces_with_code(self):
        with Workspace(strategy="serial") as ws:
            with pytest.raises(ParseError):
                ws.analyze(AnalyzeRequest(source="schema {"))

    def test_unknown_strategy_rejected(self):
        with pytest.raises(InvalidRequestError, match="unknown strategy"):
            Workspace(strategy="warp-speed")

    def test_bench_row_matches_table1(self):
        from repro.exp import run_table1_row

        row = run_table1_row(BY_NAME["SIBench"])
        with Workspace(strategy="serial") as ws:
            result = ws.bench(BenchRequest(benchmarks=("SIBench",)))
        (bench_row,) = result.rows
        assert (bench_row.ec, bench_row.at) == (row.ec, row.at)
        assert (bench_row.cc, bench_row.rr) == (row.cc, row.rr)
        assert bench_row.plan_steps == len(row.plan)
        assert bench_row.plan == row.plan.to_json()

    def test_stats_shape_and_counters(self):
        with Workspace(strategy="incremental") as ws:
            ws.analyze(AnalyzeRequest(benchmark="SIBench"))
            stats = ws.stats()
        assert stats["version"] == repro.__version__
        assert stats["strategy"] == "incremental"
        assert stats["requests"]["analyze"] == 1
        assert stats["cache"]["misses"] > 0
        assert stats["sessions"]["created"] > 0

    def test_bench_counts_as_one_request(self):
        """A bench request's internal repair/analyze calls must not
        inflate the /v1/stats request counters."""
        with Workspace(strategy="serial") as ws:
            ws.bench(BenchRequest(benchmarks=("SIBench",)))
            requests = ws.stats()["requests"]
        assert requests == {
            "analyze": 0,
            "repair": 0,
            "bench": 1,
            "protect": 0,
        }

    def test_serial_workspace_has_no_cache(self):
        with Workspace(strategy="serial") as ws:
            assert ws.cache is None
            assert ws.stats()["cache"] is None

    def test_caller_owned_strategy_survives_close(self):
        from repro.analysis.pipeline import IncrementalStrategy

        runner = IncrementalStrategy()
        try:
            with Workspace(strategy=runner) as ws:
                ws.analyze(AnalyzeRequest(benchmark="SIBench"))
            # close() must not have torn down the caller's pool.
            assert runner.pool.counters()["created"] > 0
            runner.run([], repro.EC, True)  # still usable
        finally:
            runner.close()


class TestProgressEvents:
    def collect(self, ws, request):
        events = []
        if isinstance(request, AnalyzeRequest):
            ws.analyze(request, on_progress=events.append)
        else:
            ws.repair(request, on_progress=events.append)
        return [e.stage for e in events]

    def test_analyze_emits_start_and_done(self):
        with Workspace(strategy="serial") as ws:
            stages = self.collect(ws, AnalyzeRequest(benchmark="SIBench"))
        assert stages[0] == "analyze.start" and stages[-1] == "analyze.done"

    def test_pipeline_analyze_emits_solved(self):
        with Workspace(strategy="incremental") as ws:
            stages = self.collect(ws, AnalyzeRequest(benchmark="SIBench"))
        assert "analyze.solved" in stages

    def test_repair_emits_search_events(self):
        with Workspace(strategy="serial") as ws:
            stages = self.collect(ws, RepairRequest(benchmark="Courseware"))
        assert "search.start" in stages and "search.done" in stages
        assert stages.count("search.pair") == 5  # Courseware's five pairs

    def test_replay_emits_replay_events(self):
        with Workspace(strategy="serial") as ws:
            first = ws.repair(RepairRequest(benchmark="SIBench"))
            events = []
            ws.repair(
                RepairRequest(benchmark="SIBench", plan=first.plan),
                on_progress=events.append,
            )
        assert [e.stage for e in events] == ["search.start", "search.done"]
        assert events[0].detail["mode"] == "replay"

    def test_reused_searcher_does_not_leak_previous_callback(self):
        from repro.corpus import BY_NAME
        from repro.repair.search import GreedySearch

        searcher = GreedySearch()
        program = BY_NAME["SIBench"].program()
        events = []
        with Workspace(strategy="serial") as ws:
            ws.repair_program(program, search=searcher, on_progress=events.append)
            first = len(events)
            assert first > 0
            ws.repair_program(program, search=searcher)  # no callback
        assert len(events) == first, "stale progress callback kept firing"

    def test_event_json_shape(self):
        events = []
        with Workspace(strategy="serial") as ws:
            ws.analyze(
                AnalyzeRequest(benchmark="SIBench"), on_progress=events.append
            )
        doc = events[0].to_json()
        assert set(doc) == {"stage", "detail"}


class TestStrategyContract:
    def test_default_stays_serial(self):
        assert requested_strategy(None) == ("serial", None)

    def test_flags_upgrade_default_to_auto(self):
        strategy, note = requested_strategy(None, cache_dir="/tmp/x")
        assert strategy == "auto" and "--cache-dir" in note
        strategy, note = requested_strategy(None, workers=2)
        assert strategy == "auto" and "--workers" in note

    def test_explicit_serial_is_respected(self):
        strategy, note = requested_strategy("serial", cache_dir="/tmp/x")
        assert strategy == "serial" and "ignored" in note

    def test_explicit_choice_passes_through(self):
        assert requested_strategy("incremental", cache_dir="/tmp/x") == (
            "incremental",
            None,
        )


class TestVersionSingleSourcing:
    def test_version_matches_pyproject(self):
        import os
        import re

        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        with open(os.path.join(root, "pyproject.toml")) as fh:
            declared = re.search(r'^version\s*=\s*"([^"]+)"', fh.read(), re.M)
        assert declared, "pyproject.toml lost its version field"
        assert repro.__version__ == declared.group(1)

    def test_wrapper_signature_parity(self):
        """repro.repair / detect_anomalies stay drop-in replacements."""
        program = repro.parse_program(
            "schema T { key id; field v; }\n"
            "txn bump(k) {\n"
            "  x := select v from T where id = k;\n"
            "  update T set v = x.v + 1 where id = k;\n"
            "}\n"
        )
        pairs = repro.detect_anomalies(program, level=repro.EC, use_prefilter=True)
        assert len(pairs) == 1
        report = repro.repair(program, strategy="serial", search="greedy")
        assert report.residual_pairs == []
        assert "extras" in vars(report)


def test_repair_result_json_round_trip():
    with Workspace(strategy="serial") as ws:
        result = ws.repair(RepairRequest(benchmark="Courseware"))
    again = RepairResult.from_json(json.loads(json.dumps(result.to_json())))
    assert again == result
