"""The ``python -m repro`` CLI: argument wiring and plan files."""

import json

import pytest

from repro.cli import main


class TestTable1Command:
    def test_single_benchmark_row(self, capsys):
        assert main(["table1", "--benchmark", "SIBench"]) == 0
        out = capsys.readouterr().out
        assert "SIBench" in out
        assert "EC" in out and "AT" in out

    def test_plans_flag_prints_provenance(self, capsys):
        assert main(["table1", "--benchmark", "SIBench", "--plans"]) == 0
        out = capsys.readouterr().out
        assert "SIBench plan" in out
        assert "log SITEM.si_value" in out

    def test_json_output(self, tmp_path, capsys):
        out_file = tmp_path / "t1.json"
        assert (
            main(["table1", "--benchmark", "SIBench", "--json", str(out_file)])
            == 0
        )
        data = json.loads(out_file.read_text())
        (row,) = data["rows"]
        assert row["name"] == "SIBench"
        assert row["ec"] == 1 and row["at"] == 0
        assert row["provenance"]["plan"]["steps"]
        assert row["repair_seconds"] >= 0

    def test_unknown_benchmark_exits(self):
        with pytest.raises(SystemExit, match="unknown benchmark"):
            main(["table1", "--benchmark", "Nope"])


class TestRepairCommand:
    def test_plan_out_then_plan_in_round_trip(self, tmp_path, capsys):
        plan_file = tmp_path / "plan.json"
        assert (
            main(
                [
                    "repair",
                    "--benchmark",
                    "Courseware",
                    "--plan-out",
                    str(plan_file),
                ]
            )
            == 0
        )
        first = capsys.readouterr().out
        assert "5 -> 0" in first
        data = json.loads(plan_file.read_text())
        assert data["version"] == 1
        assert any(s["step"] == "logger" for s in data["steps"])

        assert (
            main(
                [
                    "repair",
                    "--benchmark",
                    "Courseware",
                    "--plan-in",
                    str(plan_file),
                    "--print-program",
                ]
            )
            == 0
        )
        second = capsys.readouterr().out
        assert "replayed" in second
        assert "COURSE_CO_ST_CNT_LOG" in second

    def test_repair_dsl_file(self, tmp_path, capsys):
        src = tmp_path / "prog.dsl"
        src.write_text(
            "schema SITEM { key si_id; field si_value; }\n"
            "txn inc(k) {\n"
            "  x := select si_value from SITEM where si_id = k;\n"
            "  update SITEM set si_value = x.si_value + 1 where si_id = k;\n"
            "}\n"
        )
        assert main(["repair", "--file", str(src)]) == 0
        out = capsys.readouterr().out
        assert "1 -> 0" in out

    def test_missing_plan_file_is_an_error(self, capsys):
        assert (
            main(
                [
                    "repair",
                    "--benchmark",
                    "SIBench",
                    "--plan-in",
                    "/nonexistent/plan.json",
                ]
            )
            == 1
        )
        assert "error:" in capsys.readouterr().err

    def test_parse_error_is_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.dsl"
        bad.write_text("schema {")
        assert main(["repair", "--file", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err


class TestBenchCommand:
    def test_bench_single_benchmark_json(self, tmp_path, capsys):
        out_file = tmp_path / "bench.json"
        assert (
            main(
                ["bench", "--benchmark", "SIBench", "--json", str(out_file)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "repair_s" in out
        data = json.loads(out_file.read_text())
        assert data["strategy"] == "incremental"
        (row,) = data["rows"]
        assert row["name"] == "SIBench"
        assert row["plan_steps"] == 2

    def test_bench_cache_dir_warm_start(self, tmp_path, capsys):
        """A second --cache-dir run must report a strictly higher cache
        hit rate with identical result rows."""
        cache_dir = str(tmp_path / "cache")
        runs = []
        for out_name in ("cold.json", "warm.json"):
            out_file = tmp_path / out_name
            assert (
                main(
                    [
                        "bench",
                        "--benchmark",
                        "Courseware",
                        "--cache-dir",
                        cache_dir,
                        "--json",
                        str(out_file),
                    ]
                )
                == 0
            )
            assert "cache:" in capsys.readouterr().out
            runs.append(json.loads(out_file.read_text()))
        cold, warm = runs
        assert warm["cache"]["hit_rate"] > cold["cache"]["hit_rate"]
        assert warm["cache"]["persistent_hits"] > 0

        def stable(rows):
            return [
                {
                    k: v
                    for k, v in row.items()
                    if not k.startswith("repair_seconds")
                }
                for row in rows
            ]

        assert stable(cold["rows"]) == stable(warm["rows"])

    def test_cache_dir_upgrades_default_strategy_only(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert (
            main(["table1", "--benchmark", "SIBench", "--cache-dir", cache_dir])
            == 0
        )
        out = capsys.readouterr().out
        assert "using --strategy auto" in out
        # An explicit --strategy serial is respected, with a note that
        # the cache dir is unused.
        assert (
            main(
                [
                    "table1",
                    "--benchmark",
                    "SIBench",
                    "--strategy",
                    "serial",
                    "--cache-dir",
                    cache_dir,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "--cache-dir ignored" in out
        # --workers under the default strategy upgrades the same way.
        assert main(["table1", "--benchmark", "SIBench", "--workers", "2"]) == 0
        assert "using --strategy auto" in capsys.readouterr().out

    def test_bench_parallel_incremental_strategy(self, tmp_path, capsys):
        out_file = tmp_path / "bench.json"
        assert (
            main(
                [
                    "bench",
                    "--benchmark",
                    "SIBench",
                    "--strategy",
                    "parallel-incremental",
                    "--workers",
                    "2",
                    "--json",
                    str(out_file),
                ]
            )
            == 0
        )
        data = json.loads(out_file.read_text())
        assert data["strategy"] == "parallel-incremental[2]"
        (row,) = data["rows"]
        assert row["plan_steps"] == 2


class TestStrategyContract:
    """Regression tests for the --strategy None-vs-"serial" footgun: an
    explicit serial must make the flags *genuinely* unused -- no cache
    created on disk, no cache summary printed -- while the implicit
    default upgrades to auto per the documented contract."""

    def test_explicit_serial_opens_no_cache(self, tmp_path, capsys):
        import os

        cache_dir = tmp_path / "never-created"
        assert (
            main(
                [
                    "table1",
                    "--benchmark",
                    "SIBench",
                    "--strategy",
                    "serial",
                    "--cache-dir",
                    str(cache_dir),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "--cache-dir ignored" in out
        assert "cache:" not in out, "serial must not print a cache summary"
        assert not os.path.exists(cache_dir), (
            "an ignored --cache-dir must not be created on disk"
        )

    def test_explicit_serial_repair_opens_no_cache(self, tmp_path, capsys):
        import os

        cache_dir = tmp_path / "never-created"
        assert (
            main(
                [
                    "repair",
                    "--benchmark",
                    "SIBench",
                    "--strategy",
                    "serial",
                    "--cache-dir",
                    str(cache_dir),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "--cache-dir ignored" in out
        assert "cache:" not in out
        assert not os.path.exists(cache_dir)

    def test_implicit_default_with_cache_dir_uses_and_fills_it(
        self, tmp_path, capsys
    ):
        cache_dir = tmp_path / "cache"
        assert (
            main(
                ["table1", "--benchmark", "SIBench", "--cache-dir", str(cache_dir)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "using --strategy auto" in out
        assert "cache:" in out
        assert (cache_dir / "oracle_cache.sqlite").exists()

    def test_plain_default_stays_serial_without_notes(self, capsys):
        assert main(["table1", "--benchmark", "SIBench"]) == 0
        out = capsys.readouterr().out
        assert "note:" not in out and "cache:" not in out

    def test_plan_in_notes_ignored_oracle_flags(self, tmp_path, capsys):
        plan_file = tmp_path / "plan.json"
        assert (
            main(["repair", "--benchmark", "SIBench", "--plan-out", str(plan_file)])
            == 0
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "repair",
                    "--benchmark",
                    "SIBench",
                    "--plan-in",
                    str(plan_file),
                    "--strategy",
                    "parallel-incremental",
                    "--workers",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "--plan-in replays" in out
        assert "--strategy/--workers ignored" in out


class TestSchemasCommand:
    def test_dump_then_check_round_trip(self, tmp_path, capsys):
        out_dir = str(tmp_path / "schemas")
        assert main(["schemas", "--out", out_dir]) == 0
        assert "wrote" in capsys.readouterr().out
        assert main(["schemas", "--out", out_dir, "--check"]) == 0
        assert "match" in capsys.readouterr().out

    def test_check_fails_on_drift(self, tmp_path, capsys):
        out_dir = tmp_path / "schemas"
        assert main(["schemas", "--out", str(out_dir)]) == 0
        capsys.readouterr()
        victim = next(out_dir.glob("*.json"))
        victim.write_text("{}")
        assert main(["schemas", "--out", str(out_dir), "--check"]) == 1
        assert "schema drift" in capsys.readouterr().err

    def test_committed_goldens_are_current(self, capsys):
        """The same gate CI runs: schemas/ in the repo matches the code."""
        import os

        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        assert main(["schemas", "--out", os.path.join(root, "schemas"), "--check"]) == 0
        capsys.readouterr()
