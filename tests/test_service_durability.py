"""Durable-service acceptance: crash recovery, restart persistence,
backpressure semantics, and the streamed event feed.

These are the properties the ISSUE's multi-process topology was built
for: kill a worker mid-job and the job completes anyway (byte-identical
to the library); restart the server mid-queue and zero submitted jobs
are lost; fill the queue and get a machine-readable 429, not an
unbounded backlog.
"""

import json
import os
import signal
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import AnalyzeRequest, RepairRequest, Workspace
from repro.service import JobStore, make_server


def start(server):
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    return thread, f"http://{host}:{port}"


def call(base, method, path, body=None, timeout=300):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def wait_for(base, job_id, timeout=300):
    deadline = time.time() + timeout
    while time.time() < deadline:
        status, doc, _ = call(base, "GET", f"/v1/jobs/{job_id}")
        assert status == 200, doc
        if doc["status"] in ("done", "failed"):
            return doc
        time.sleep(0.05)
    pytest.fail(f"job {job_id} did not finish within {timeout}s")


class TestRestartRecovery:
    def test_finished_results_survive_restart(self, tmp_path):
        """The old in-memory queue forgot every result on restart; the
        store must serve them back from disk in a brand-new server."""
        job_db = str(tmp_path / "jobs.sqlite")
        request = AnalyzeRequest(benchmark="SIBench").to_json()

        server = make_server(port=0, job_db=job_db)
        thread, base = start(server)
        status, job, _ = call(base, "POST", "/v1/jobs", request)
        assert status == 202
        done = wait_for(base, job["id"])
        server.close()
        thread.join(timeout=10)

        server = make_server(port=0, job_db=job_db)
        thread, base = start(server)
        try:
            status, again, _ = call(base, "GET", f"/v1/jobs/{job['id']}")
            assert status == 200
            assert again["status"] == "done"
            assert again["result"] == done["result"]
        finally:
            server.close()
            thread.join(timeout=10)

    def test_restart_mid_queue_loses_zero_jobs(self, tmp_path):
        """Submit a backlog, kill the server before it drains, restart:
        every job must finish, byte-identical to direct library calls."""
        job_db = str(tmp_path / "jobs.sqlite")
        benchmarks = ("SIBench", "Courseware", "SmallBank")

        # No runner: jobs stay queued, simulating a server that died
        # with a backlog (the worst restart case).
        server = make_server(port=0, job_db=job_db, start_runner=False)
        thread, base = start(server)
        submitted = {}
        for name in benchmarks:
            status, job, _ = call(
                base, "POST", "/v1/jobs",
                AnalyzeRequest(benchmark=name).to_json(),
            )
            assert status == 202
            submitted[name] = job["id"]
        # Simulate an unclean death mid-backlog: drop the sockets and
        # the store without any drain/checkpoint handshake.
        server.shutdown()
        server.server_close()
        server.service.store.close()
        thread.join(timeout=10)

        server = make_server(port=0, job_db=job_db)
        thread, base = start(server)
        try:
            with Workspace(strategy="serial") as ws:
                for name, job_id in submitted.items():
                    doc = wait_for(base, job_id)
                    assert doc["status"] == "done", doc["error"]
                    direct = ws.analyze(AnalyzeRequest(benchmark=name))
                    assert doc["result"]["pairs"] == [
                        p.to_json() for p in direct.pairs
                    ], name
        finally:
            server.close()
            thread.join(timeout=10)

    def test_orphaned_running_job_is_requeued_on_boot(self, tmp_path):
        """A job left `running` by a dead process generation must be
        re-enqueued when a new server opens the store."""
        job_db = str(tmp_path / "jobs.sqlite")
        with JobStore(job_db) as store:
            job = store.submit(AnalyzeRequest(benchmark="SIBench"))
            store.claim("w0-12345")  # owner from a previous life

        server = make_server(port=0, job_db=job_db)
        thread, base = start(server)
        try:
            assert server.service.recovered_jobs == 1
            doc = wait_for(base, job.id)
            assert doc["status"] == "done", doc["error"]
            status, stats, _ = call(base, "GET", "/v1/stats")
            assert stats["service"]["recovered_jobs"] == 1
        finally:
            server.close()
            thread.join(timeout=10)


class TestWorkerCrash:
    def test_sigkill_mid_job_reenqueues_and_completes(self, tmp_path):
        """Kill the only worker process mid-repair: the monitor must
        respawn it, the job must re-run, and the result must match the
        direct library call byte-for-byte."""
        server = make_server(
            port=0, workers=1, job_db=str(tmp_path / "jobs.sqlite")
        )
        thread, base = start(server)
        try:
            pool = server.service.runner
            request = RepairRequest(benchmark="Courseware").to_json()
            status, job, _ = call(base, "POST", "/v1/jobs", request)
            assert status == 202

            # Wait until the worker has actually claimed it...
            deadline = time.time() + 60
            while time.time() < deadline:
                _, doc, _ = call(base, "GET", f"/v1/jobs/{job['id']}")
                if doc["status"] == "running":
                    break
                time.sleep(0.02)
            assert doc["status"] == "running", doc
            # ...then kill the worker mid-flight.
            os.kill(pool.pids()[0], signal.SIGKILL)

            done = wait_for(base, job["id"])
            assert done["status"] == "done", done["error"]
            assert done["attempts"] >= 2  # first claim died with the worker
            assert pool.counters()["restarts"] >= 1

            with Workspace(strategy="serial") as ws:
                direct = ws.repair(RepairRequest(benchmark="Courseware"))
            assert done["result"]["plan"] == direct.plan
            assert done["result"]["repaired_program"] == direct.repaired_program
        finally:
            server.close()
            thread.join(timeout=10)


class TestBackpressure:
    def test_full_queue_is_429_with_retry_after(self, tmp_path):
        """`start_runner=False` freezes the queue, so the depth cap is
        hit deterministically."""
        server = make_server(
            port=0,
            job_db=str(tmp_path / "jobs.sqlite"),
            max_queue_depth=2,
            start_runner=False,
        )
        thread, base = start(server)
        try:
            request = AnalyzeRequest(benchmark="SIBench").to_json()
            for _ in range(2):
                status, _, _ = call(base, "POST", "/v1/jobs", request)
                assert status == 202
            status, payload, headers = call(base, "POST", "/v1/jobs", request)
            assert status == 429
            assert payload["error"]["code"] == "queue-full"
            assert int(headers["Retry-After"]) >= 1
            _, stats, _ = call(base, "GET", "/v1/stats")
            assert stats["service"]["admission"]["queue_full"] == 1
            assert stats["service"]["queue_depth"] == 2
        finally:
            server.close()
            thread.join(timeout=10)

    def test_rate_limit_is_429(self, tmp_path):
        server = make_server(
            port=0,
            job_db=str(tmp_path / "jobs.sqlite"),
            rate_limit=1.0,
            rate_burst=1.0,
            start_runner=False,
        )
        thread, base = start(server)
        try:
            request = AnalyzeRequest(benchmark="SIBench").to_json()
            status, _, _ = call(base, "POST", "/v1/jobs", request)
            assert status == 202
            status, payload, headers = call(base, "POST", "/v1/jobs", request)
            assert status == 429
            assert payload["error"]["code"] == "rate-limited"
            assert "Retry-After" in headers
            # Reads are never rate limited.
            status, _, _ = call(base, "GET", "/v1/stats")
            assert status == 200
        finally:
            server.close()
            thread.join(timeout=10)

    def test_oversized_body_is_413(self, tmp_path):
        server = make_server(
            port=0,
            job_db=str(tmp_path / "jobs.sqlite"),
            max_request_bytes=512,
            start_runner=False,
        )
        thread, base = start(server)
        try:
            body = AnalyzeRequest(source="x" * 4096).to_json()
            status, payload, _ = call(base, "POST", "/v1/jobs", body)
            assert status == 413
            assert payload["error"]["code"] == "request-too-large"
        finally:
            server.close()
            thread.join(timeout=10)

    def test_draining_refuses_posts_but_serves_reads(self, tmp_path):
        server = make_server(port=0, job_db=str(tmp_path / "jobs.sqlite"))
        thread, base = start(server)
        try:
            request = AnalyzeRequest(benchmark="SIBench").to_json()
            status, job, _ = call(base, "POST", "/v1/jobs", request)
            assert status == 202
            done = wait_for(base, job["id"])

            assert server.service.drain(timeout=30)

            status, payload, headers = call(base, "POST", "/v1/jobs", request)
            assert status == 503
            assert payload["error"]["code"] == "draining"
            assert "Retry-After" in headers
            # Reads keep working so operators can watch the drain.
            status, health, _ = call(base, "GET", "/v1/health")
            assert status == 200 and health["status"] == "draining"
            status, again, _ = call(base, "GET", f"/v1/jobs/{job['id']}")
            assert status == 200 and again["result"] == done["result"]
        finally:
            server.close()
            thread.join(timeout=10)


class TestEventStream:
    def test_stream_is_ndjson_and_terminates(self, tmp_path):
        server = make_server(port=0, job_db=str(tmp_path / "jobs.sqlite"))
        thread, base = start(server)
        try:
            request = RepairRequest(benchmark="SIBench").to_json()
            status, job, _ = call(base, "POST", "/v1/jobs", request)
            assert status == 202
            # urllib transparently de-chunks, so lines arrive as sent.
            with urllib.request.urlopen(
                base + f"/v1/jobs/{job['id']}/events", timeout=300
            ) as resp:
                assert resp.headers["Content-Type"] == "application/x-ndjson"
                lines = [json.loads(line) for line in resp]
            assert lines, "stream yielded nothing"
            assert lines[-1]["stage"] == "job.end"
            assert lines[-1]["detail"]["status"] == "done"
            stages = [line["stage"] for line in lines[:-1]]
            assert "search.done" in stages
            for line in lines[:-1]:
                assert set(line) == {"stage", "detail"}
        finally:
            server.close()
            thread.join(timeout=10)

    def test_stream_for_finished_job_replays_and_ends(self, tmp_path):
        server = make_server(port=0, job_db=str(tmp_path / "jobs.sqlite"))
        thread, base = start(server)
        try:
            status, job, _ = call(
                base, "POST", "/v1/jobs",
                AnalyzeRequest(benchmark="SIBench").to_json(),
            )
            wait_for(base, job["id"])
            with urllib.request.urlopen(
                base + f"/v1/jobs/{job['id']}/events", timeout=60
            ) as resp:
                lines = [json.loads(line) for line in resp]
            assert lines[-1] == {
                "stage": "job.end", "detail": {"status": "done"},
            }
        finally:
            server.close()
            thread.join(timeout=10)

    def test_stream_for_unknown_job_is_404(self, tmp_path):
        server = make_server(port=0, job_db=str(tmp_path / "jobs.sqlite"))
        thread, base = start(server)
        try:
            status, payload, _ = call(
                base, "GET", "/v1/jobs/job-9999-deadbeef/events"
            )
            assert status == 404
            assert payload["error"]["code"] == "job-not-found"
        finally:
            server.close()
            thread.join(timeout=10)
