"""Data migration and containment-checker unit tests."""

import pytest

from repro.lang import parse_program
from repro.refactor import (
    check_containment,
    migrate_database,
)
from repro.refactor.correspondence import (
    Aggregator,
    RecordCorrespondence,
    ValueCorrespondence,
)
from repro.repair import repair
from repro.semantics import Database


@pytest.fixture
def fused():
    """A redirect-repaired two-table program plus its artifacts."""
    src = """
    schema HUB { key id; field name; }
    schema SAT { key s_id ref HUB.id; field v; }
    txn get(k) {
      h := select name from HUB where id = k;
      s := select v from SAT where s_id = k;
      return s.v;
    }
    txn put(k, n) {
      update HUB set name = n where id = k;
      update SAT set v = 1 where s_id = k;
    }
    """
    program = parse_program(src)
    report = repair(program)
    db = Database(program)
    db.insert("HUB", id=1, name="a")
    db.insert("HUB", id=2, name="b")
    db.insert("SAT", s_id=1, v=10)
    db.insert("SAT", s_id=2, v=20)
    return program, report, db


class TestMigrateRedirect:
    def test_values_copied_into_target(self, fused):
        program, report, db = fused
        at_db = migrate_database(db, report.repaired_program, report.rewrites)
        hub = at_db.tables["HUB"]
        moved_field = report.correspondences[0].dst_field
        assert hub[(1,)][moved_field] == 10
        assert hub[(2,)][moved_field] == 20

    def test_dissolved_table_absent(self, fused):
        program, report, db = fused
        at_db = migrate_database(db, report.repaired_program, report.rewrites)
        assert "SAT" not in at_db.tables

    def test_unmatched_target_gets_none(self):
        src = """
        schema HUB { key id; field n; }
        schema SAT { key s_id ref HUB.id; field v; }
        txn g(k) { s := select v from SAT where s_id = k; return s.v; }
        txn w(k) { update SAT set v = 1 where s_id = k; }
        """
        program = parse_program(src)
        report = repair(program)
        if not report.rewrites:
            pytest.skip("no redirect applied")
        db = Database(program)
        db.insert("HUB", id=1, n="x")  # no SAT row for id=1
        at_db = migrate_database(db, report.repaired_program, report.rewrites)
        field = report.correspondences[0].dst_field
        assert at_db.tables["HUB"][(1,)][field] is None


class TestMigrateLogger:
    def test_initial_values_seeded(self):
        src = """
        schema T { key id; field v; }
        txn incr(k) {
          x := select v from T where id = k;
          update T set v = x.v + 1 where id = k;
        }
        """
        program = parse_program(src)
        report = repair(program)
        db = Database(program)
        db.insert("T", id=1, v=42)
        at_db = migrate_database(db, report.repaired_program, report.rewrites)
        logs = at_db.tables["T_V_LOG"]
        assert len(logs) == 1
        (record,) = logs.values()
        assert record["v_log"] == 42
        assert record["id"] == 1


def _state(tables):
    """Wrap plain dicts as a materialised state."""
    return tables


class TestContainmentChecker:
    PROGRAM = parse_program(
        "schema T { key id; field v; } txn g(k) "
        "{ x := select v from T where id = k; return x.v; }"
    )

    def test_identity_match(self):
        orig = {"T": {(1,): {"id": 1, "v": 5}}}
        assert check_containment(self.PROGRAM, orig, orig, []) == []

    def test_identity_mismatch(self):
        orig = {"T": {(1,): {"id": 1, "v": 5}}}
        refact = {"T": {(1,): {"id": 1, "v": 6}}}
        violations = check_containment(self.PROGRAM, orig, refact, [])
        assert len(violations) == 1
        assert "identity mismatch" in violations[0].describe()

    def test_missing_record(self):
        orig = {"T": {(1,): {"id": 1, "v": 5}}}
        refact = {"T": {}}
        assert check_containment(self.PROGRAM, orig, refact, [])

    def test_sum_correspondence(self):
        corr = ValueCorrespondence(
            src_table="T", dst_table="L", src_field="v", dst_field="v_log",
            theta=RecordCorrespondence("T", "L", (("id", "id"),)),
            alpha=Aggregator.SUM,
        )
        orig = {"T": {(1,): {"id": 1, "v": 5}}}
        refact = {
            "L": {
                (1, "a"): {"id": 1, "log_id": "a", "v_log": 2},
                (1, "b"): {"id": 1, "log_id": "b", "v_log": 3},
            }
        }
        assert check_containment(self.PROGRAM, orig, refact, [corr]) == []

    def test_sum_mismatch_detected(self):
        corr = ValueCorrespondence(
            src_table="T", dst_table="L", src_field="v", dst_field="v_log",
            theta=RecordCorrespondence("T", "L", (("id", "id"),)),
            alpha=Aggregator.SUM,
        )
        orig = {"T": {(1,): {"id": 1, "v": 5}}}
        refact = {"L": {(1, "a"): {"id": 1, "log_id": "a", "v_log": 2}}}
        violations = check_containment(self.PROGRAM, orig, refact, [corr])
        assert violations and "sum fold" in violations[0].describe()

    def test_any_correspondence_membership(self):
        corr = ValueCorrespondence(
            src_table="T", dst_table="H", src_field="v", dst_field="hv",
            theta=RecordCorrespondence("T", "H", (("id", "t_ref"),)),
            alpha=Aggregator.ANY,
        )
        orig = {"T": {(1,): {"id": 1, "v": 5}}}
        refact = {
            "H": {
                (10,): {"hid": 10, "t_ref": 1, "hv": 5},
                (11,): {"hid": 11, "t_ref": 1, "hv": 7},
            }
        }
        assert check_containment(self.PROGRAM, orig, refact, [corr]) == []

    def test_any_correspondence_value_missing(self):
        corr = ValueCorrespondence(
            src_table="T", dst_table="H", src_field="v", dst_field="hv",
            theta=RecordCorrespondence("T", "H", (("id", "t_ref"),)),
            alpha=Aggregator.ANY,
        )
        orig = {"T": {(1,): {"id": 1, "v": 5}}}
        refact = {"H": {(10,): {"hid": 10, "t_ref": 1, "hv": 9}}}
        violations = check_containment(self.PROGRAM, orig, refact, [corr])
        assert violations and "not among theta(r) copies" in violations[0].describe()

    def test_empty_theta_dissolves_record(self):
        # The appendix semantics: record presence follows theta(r).
        corr = ValueCorrespondence(
            src_table="T", dst_table="H", src_field="v", dst_field="hv",
            theta=RecordCorrespondence("T", "H", (("id", "t_ref"),)),
            alpha=Aggregator.ANY,
        )
        orig = {"T": {(1,): {"id": 1, "v": 5}}}
        refact = {"H": {}}
        assert check_containment(self.PROGRAM, orig, refact, [corr]) == []

    def test_theta_evaluation(self):
        theta = RecordCorrespondence("T", "H", (("id", "t_ref"),))
        records = {
            (10,): {"t_ref": 1},
            (11,): {"t_ref": 2},
            (12,): {"t_ref": 1},
        }
        assert sorted(theta.theta(("id",), (1,), records)) == [(10,), (12,)]
        assert theta.theta(("id",), (3,), records) == []
