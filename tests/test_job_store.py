"""The durable job store: claims, shard affinity, crash recovery,
retention, and persistence across reopen."""

import json
import os

import pytest

from repro.api import AnalyzeRequest, JobNotFoundError
from repro.api.events import ProgressEvent
from repro.service.store import (
    DEFAULT_TENANT,
    MAX_EVENTS,
    JobStore,
    shard_key_of,
)


@pytest.fixture
def store(tmp_path):
    with JobStore(str(tmp_path / "jobs.sqlite")) as s:
        yield s


def request_for(benchmark):
    return AnalyzeRequest(benchmark=benchmark)


class TestSubmitAndClaim:
    def test_submit_persists_a_queued_row(self, store):
        job = store.submit(request_for("SIBench"))
        assert job.status == "queued"
        loaded = store.get(job.id)
        assert loaded.status == "queued"
        assert loaded.request == request_for("SIBench").to_json()
        assert store.depth() == 1

    def test_claim_is_fifo_and_single_winner(self, store):
        first = store.submit(request_for("SIBench"))
        second = store.submit(request_for("Courseware"))
        claimed = store.claim("w0")
        assert claimed.id == first.id
        assert claimed.status == "running"
        assert claimed.worker == "w0"
        assert claimed.attempts == 1
        # The same row can never be claimed twice.
        assert store.claim("w1").id == second.id
        assert store.claim("w2") is None

    def test_claim_prefers_own_shard_then_steals(self, store):
        jobs = [
            store.submit(request_for(name))
            for name in ("SIBench", "Courseware", "SmallBank", "TPC-C")
        ]
        shards = 2
        mine = [
            j.id for j in jobs
            if shard_key_of(j.request) % shards == 0
        ]
        others = [j.id for j in jobs if j.id not in mine]
        for expected in mine:
            assert store.claim("w0", shard=0, shards=shards).id == expected
        # Own shard drained: stealing picks up the rest, oldest first.
        for expected in others:
            assert store.claim("w0", shard=0, shards=shards).id == expected
        assert store.claim("w0", shard=0, shards=shards) is None

    def test_shard_key_is_stable(self):
        doc = request_for("SIBench").to_json()
        assert shard_key_of(doc) == shard_key_of(json.loads(json.dumps(doc)))
        assert shard_key_of(doc) != shard_key_of(
            request_for("Courseware").to_json()
        )


class TestLifecycle:
    def test_finish_persists_result(self, store):
        job = store.submit(request_for("SIBench"))
        store.claim("w0")
        store.finish(job.id, {"version": 1, "kind": "analyze_result"})
        done = store.get(job.id)
        assert done.status == "done"
        assert done.result == {"version": 1, "kind": "analyze_result"}
        assert done.finished_at is not None

    def test_fail_persists_error(self, store):
        job = store.submit(request_for("Nope"))
        store.claim("w0")
        store.fail(job.id, {"error": {"code": "unknown-benchmark", "message": "x"}})
        failed = store.get(job.id)
        assert failed.status == "failed"
        assert failed.error["error"]["code"] == "unknown-benchmark"

    def test_events_are_ordered_and_trimmed(self, store):
        job = store.submit(request_for("SIBench"))
        for i in range(MAX_EVENTS + 25):
            store.record_event(job.id, ProgressEvent("tick", {"i": i}))
        events = store.get(job.id).events
        assert len(events) == MAX_EVENTS
        # Newest survive; the oldest 25 were trimmed.
        assert events[0]["detail"]["i"] == 25
        assert events[-1]["detail"]["i"] == MAX_EVENTS + 24

    def test_events_since_pages_incrementally(self, store):
        job = store.submit(request_for("SIBench"))
        store.record_event(job.id, ProgressEvent("a", {}))
        store.record_event(job.id, ProgressEvent("b", {}))
        batch, status = store.events_since(job.id, 0)
        assert [e["stage"] for _, e in batch] == ["a", "b"]
        assert status == "queued"
        last_seq = batch[-1][0]
        store.record_event(job.id, ProgressEvent("c", {}))
        batch, _ = store.events_since(job.id, last_seq)
        assert [e["stage"] for _, e in batch] == ["c"]

    def test_unknown_job_raises(self, store):
        with pytest.raises(JobNotFoundError):
            store.get("job-9999-deadbeef")
        with pytest.raises(JobNotFoundError):
            store.events_since("job-9999-deadbeef", 0)


class TestRecovery:
    def test_orphans_are_requeued(self, store):
        job = store.submit(request_for("SIBench"))
        store.claim("w0-dead")
        requeued, failed = store.recover(active_owners={"w1-alive"})
        assert requeued == [job.id]
        assert failed == []
        recovered = store.get(job.id)
        assert recovered.status == "queued"
        assert recovered.worker is None
        # Attempts carry across the crash: the retry budget is real.
        assert recovered.attempts == 1

    def test_live_owners_keep_their_claims(self, store):
        job = store.submit(request_for("SIBench"))
        store.claim("w0-alive")
        requeued, failed = store.recover(active_owners={"w0-alive"})
        assert requeued == [] and failed == []
        assert store.get(job.id).status == "running"

    def test_poison_job_fails_at_attempt_cap(self, tmp_path):
        with JobStore(str(tmp_path / "jobs.sqlite"), max_attempts=2) as store:
            job = store.submit(request_for("SIBench"))
            store.claim("w0")
            assert store.recover(set()) == ([job.id], [])
            store.claim("w0")
            requeued, failed = store.recover(set())
            assert requeued == [] and failed == [job.id]
            dead = store.get(job.id)
            assert dead.status == "failed"
            assert dead.error["error"]["code"] == "worker-crashed"


class TestDurability:
    def test_everything_survives_reopen(self, tmp_path):
        path = str(tmp_path / "jobs.sqlite")
        with JobStore(path) as store:
            queued = store.submit(request_for("SIBench"))
            finished = store.submit(request_for("Courseware"))
            store.claim("w0")  # claims `queued` (FIFO)
            store.finish(queued.id, {"ok": 1})
            store.record_event(finished.id, ProgressEvent("early", {}))
        with JobStore(path) as store:
            assert store.get(queued.id).result == {"ok": 1}
            still_queued = store.get(finished.id)
            assert still_queued.status == "queued"
            assert [e["stage"] for e in still_queued.events] == ["early"]
            assert store.counters() == {
                "queued": 1, "running": 0, "done": 1, "failed": 0,
                "cancelled": 0, "total": 2,
            }

    def test_prune_drops_oldest_finished_beyond_cap(self, tmp_path):
        with JobStore(str(tmp_path / "jobs.sqlite"), max_finished=2) as store:
            ids = []
            for name in ("SIBench", "Courseware", "SmallBank"):
                job = store.submit(request_for(name))
                store.claim("w0")
                store.finish(job.id, {"n": name})
                ids.append(job.id)
            assert store.prune() == 1
            with pytest.raises(JobNotFoundError):
                store.get(ids[0])
            assert store.get(ids[1]).status == "done"
            assert store.get(ids[2]).status == "done"

    def test_corrupt_db_fails_loud_with_runbook_pointer(self, tmp_path):
        path = tmp_path / "jobs.sqlite"
        path.write_bytes(b"this is not a sqlite file" * 64)
        with pytest.raises(RuntimeError, match="OPERATIONS.md"):
            JobStore(str(path))

    def test_ids_stay_unique_across_reopen(self, tmp_path):
        path = str(tmp_path / "jobs.sqlite")
        with JobStore(path) as store:
            first = store.submit(request_for("SIBench")).id
        with JobStore(path) as store:
            second = store.submit(request_for("SIBench")).id
        assert first != second
        assert os.path.exists(path)


class TestTenancy:
    def test_tenant_persists_and_scopes_queries(self, store):
        plain = store.submit(request_for("SIBench"))
        acme = store.submit(request_for("Courseware"), tenant="acme")
        assert store.get(plain.id).tenant == DEFAULT_TENANT
        assert store.get(acme.id).tenant == "acme"
        assert store.depth() == 2
        assert store.depth(tenant="acme") == 1
        assert [j.id for j in store.list(tenant="acme")] == [acme.id]
        counters = store.tenant_counters()
        assert counters["acme"]["queued"] == 1
        assert counters[DEFAULT_TENANT]["queued"] == 1

    def test_envelope_tenant_is_used_when_no_override(self, store):
        request = AnalyzeRequest(benchmark="SIBench", tenant="from-envelope")
        job = store.submit(request)
        assert store.get(job.id).tenant == "from-envelope"
        overridden = store.submit(request, tenant="from-header")
        assert store.get(overridden.id).tenant == "from-header"

    def test_equal_weights_alternate_claims(self, store):
        # The fairness core: a 6-job backlog from tenant a must not
        # delay tenant b's jobs behind all six.
        for _ in range(6):
            store.submit(request_for("SIBench"), tenant="a")
        for _ in range(3):
            store.submit(request_for("SIBench"), tenant="b")
        served = [store.claim("w0").tenant for _ in range(6)]
        assert served == ["a", "b", "a", "b", "a", "b"]
        # b's queue is drained; a gets the leftovers.
        assert [store.claim("w0").tenant for _ in range(3)] == ["a", "a", "a"]

    def test_weights_shape_the_interleave(self, store):
        for _ in range(6):
            store.submit(request_for("SIBench"), tenant="a")
            store.submit(request_for("SIBench"), tenant="b")
        served = [
            store.claim("w0", weights={"a": 2.0}).tenant for _ in range(6)
        ]
        # Weight 2 means two a jobs per b job.
        assert served == ["a", "a", "b", "a", "a", "b"]

    def test_running_cap_skips_saturated_tenant(self, store):
        for _ in range(3):
            store.submit(request_for("SIBench"), tenant="hog")
        store.submit(request_for("SIBench"), tenant="calm")
        first = store.claim("w0", max_running_per_tenant=1)
        # With hog at its running cap after one claim, the second claim
        # must take calm's job, not hog's second -- one of each runs.
        second = store.claim("w1", max_running_per_tenant=1)
        assert {first.tenant, second.tenant} == {"hog", "calm"}
        # hog is capped and calm's queue is empty: nothing claimable
        # despite hog's backlog.
        assert store.claim("w2", max_running_per_tenant=1) is None
        hog_job = first if first.tenant == "hog" else second
        store.finish(hog_job.id, {"ok": 1})
        assert store.claim("w2", max_running_per_tenant=1).tenant == "hog"

    def test_prune_applies_per_tenant_retention(self, tmp_path):
        with JobStore(
            str(tmp_path / "jobs.sqlite"),
            max_finished=100, max_finished_per_tenant=1,
        ) as store:
            kept = {}
            for tenant in ("a", "b"):
                for n in range(3):
                    job = store.submit(request_for("SIBench"), tenant=tenant)
                    store.claim("w0")
                    store.finish(job.id, {"n": n})
                    kept[tenant] = job.id
            # Each tenant keeps its newest finished row; the global cap
            # (100) never fires.
            assert store.prune() == 4
            for tenant, job_id in kept.items():
                assert store.get(job_id).tenant == tenant
            counters = store.tenant_counters()
            assert counters["a"]["done"] == 1
            assert counters["b"]["done"] == 1

    def test_drain_exit_prunes(self, tmp_path):
        # Satellite: a worker told to stop still runs retention on the
        # way out, even if it never claimed a job.
        from repro.service.workers import _drain_loop

        with JobStore(str(tmp_path / "jobs.sqlite"), max_finished=1) as store:
            for name in ("SIBench", "Courseware", "SmallBank"):
                job = store.submit(request_for(name))
                store.claim("w0")
                store.finish(job.id, {"n": name})
            assert store.counters()["done"] == 3
            _drain_loop(store, None, "w0", should_stop=lambda: True)
            assert store.counters()["done"] == 1

    def test_pre_tenancy_database_is_migrated(self, tmp_path):
        import sqlite3

        path = str(tmp_path / "jobs.sqlite")
        with JobStore(path) as store:
            job_id = store.submit(request_for("SIBench")).id
        # Rewind the schema to the pre-tenancy shape.
        conn = sqlite3.connect(path)
        conn.executescript(
            "CREATE TABLE jobs_old AS SELECT id, kind, status, request,"
            " shard_key, result, error, created_at, started_at,"
            " finished_at, owner, attempts, cancel_requested FROM jobs;"
            "DROP TABLE jobs;"
            "ALTER TABLE jobs_old RENAME TO jobs;"
        )
        conn.close()
        with JobStore(path) as store:
            job = store.get(job_id)
            assert job.tenant == DEFAULT_TENANT
            assert store.depth(tenant=DEFAULT_TENANT) == 1
