"""Multi-tenant isolation at the service boundary: identity threading,
gate ordering, per-tenant quotas, suspension, and the failure breaker.

The admission gates are checked in a fixed order -- draining, request
size, suspension/breaker, rate, per-tenant queue share, global queue
depth -- and each refusal carries its own stable code.  These tests pin
both the order (by arranging requests that violate two gates at once
and asserting which code wins) and the wire shape (status,
``Retry-After``) of every refusal.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import AnalyzeRequest
from repro.service import make_server


def start(server):
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    return thread, f"http://{host}:{port}"


def call(base, method, path, body=None, tenant=None, timeout=300):
    data = (
        body if isinstance(body, bytes)
        else json.dumps(body).encode() if body is not None
        else None
    )
    headers = {"Content-Type": "application/json"}
    if tenant is not None:
        headers["X-Repro-Tenant"] = tenant
    request = urllib.request.Request(
        base + path, data=data, method=method, headers=headers,
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def wait_terminal(base, job_id, timeout=60):
    deadline = time.time() + timeout
    while time.time() < deadline:
        status, doc, _ = call(base, "GET", f"/v1/jobs/{job_id}")
        assert status == 200, doc
        if doc["status"] in ("done", "failed", "cancelled"):
            return doc
    pytest.fail(f"job {job_id} not terminal within {timeout}s")


REQUEST = AnalyzeRequest(benchmark="SIBench").to_json()


class TestGateOrdering:
    def test_draining_beats_everything(self, tmp_path):
        server = make_server(
            port=0, job_db=str(tmp_path / "jobs.sqlite"),
            max_request_bytes=64, start_runner=False,
        )
        server.service.admission.draining = True
        server.service.admission.suspend("acme")
        thread, base = start(server)
        try:
            # Draining + oversized + suspended: draining wins (the one
            # code that says "go elsewhere").
            status, payload, headers = call(
                base, "POST", "/v1/jobs", b"x" * 1000, tenant="acme"
            )
            assert status == 503
            assert payload["error"]["code"] == "draining"
            assert int(headers["Retry-After"]) >= 1
        finally:
            server.close()
            thread.join(timeout=10)

    def test_size_beats_suspension(self, tmp_path):
        server = make_server(
            port=0, job_db=str(tmp_path / "jobs.sqlite"),
            max_request_bytes=64, start_runner=False,
        )
        server.service.admission.suspend("acme")
        thread, base = start(server)
        try:
            status, payload, _ = call(
                base, "POST", "/v1/jobs", b"x" * 1000, tenant="acme"
            )
            assert status == 413
            assert payload["error"]["code"] == "request-too-large"
        finally:
            server.close()
            thread.join(timeout=10)

    def test_suspension_beats_rate_limit(self, tmp_path):
        server = make_server(
            port=0, job_db=str(tmp_path / "jobs.sqlite"),
            rate_limit=1.0, rate_burst=1.0, start_runner=False,
        )
        server.service.admission.suspend("acme")
        thread, base = start(server)
        try:
            # Drain acme's bucket via another identity?  No: suspension
            # must answer first even on the very first (in-bucket)
            # request, so both gates are armed and suspended wins.
            status, payload, headers = call(
                base, "POST", "/v1/jobs", REQUEST, tenant="acme"
            )
            assert status == 429
            assert payload["error"]["code"] == "tenant-suspended"
            assert int(headers["Retry-After"]) >= 1
        finally:
            server.close()
            thread.join(timeout=10)

    def test_rate_limit_beats_tenant_queue_share(self, tmp_path):
        server = make_server(
            port=0, job_db=str(tmp_path / "jobs.sqlite"),
            rate_limit=0.001, rate_burst=1.0,
            max_queued_per_tenant=1, start_runner=False,
        )
        thread, base = start(server)
        try:
            status, _, _ = call(
                base, "POST", "/v1/jobs", REQUEST, tenant="acme"
            )
            assert status == 202
            # acme's queue share is now full AND its bucket is empty:
            # the rate gate answers (admission runs before the store).
            status, payload, headers = call(
                base, "POST", "/v1/jobs", REQUEST, tenant="acme"
            )
            assert status == 429
            assert payload["error"]["code"] == "tenant-rate-limited"
            assert int(headers["Retry-After"]) >= 1
        finally:
            server.close()
            thread.join(timeout=10)

    def test_tenant_share_beats_global_depth(self, tmp_path):
        server = make_server(
            port=0, job_db=str(tmp_path / "jobs.sqlite"),
            max_queue_depth=64, max_queued_per_tenant=1,
            start_runner=False,
        )
        thread, base = start(server)
        try:
            status, _, _ = call(
                base, "POST", "/v1/jobs", REQUEST, tenant="acme"
            )
            assert status == 202
            status, payload, headers = call(
                base, "POST", "/v1/jobs", REQUEST, tenant="acme"
            )
            assert status == 429
            assert payload["error"]["code"] == "tenant-queue-full"
            assert int(headers["Retry-After"]) >= 1
            # The global queue (depth 1 of 64) still admits others.
            status, _, _ = call(
                base, "POST", "/v1/jobs", REQUEST, tenant="other"
            )
            assert status == 202
        finally:
            server.close()
            thread.join(timeout=10)

    def test_global_depth_still_answers_queue_full(self, tmp_path):
        server = make_server(
            port=0, job_db=str(tmp_path / "jobs.sqlite"),
            max_queue_depth=2, max_queued_per_tenant=2,
            start_runner=False,
        )
        thread, base = start(server)
        try:
            for tenant in ("a", "b"):
                status, _, _ = call(
                    base, "POST", "/v1/jobs", REQUEST, tenant=tenant
                )
                assert status == 202
            # b holds 1 of its 2-job share, so the tenant gate passes;
            # the global cap (2) answers with the legacy code.
            status, payload, headers = call(
                base, "POST", "/v1/jobs", REQUEST, tenant="b"
            )
            assert status == 429
            assert payload["error"]["code"] == "queue-full"
            assert int(headers["Retry-After"]) >= 1
        finally:
            server.close()
            thread.join(timeout=10)


class TestTenantIdentity:
    def test_header_envelope_and_fallback_precedence(self, tmp_path):
        server = make_server(
            port=0, job_db=str(tmp_path / "jobs.sqlite"),
            start_runner=False,
        )
        thread, base = start(server)
        try:
            # Header wins over the envelope field.
            body = dict(REQUEST, tenant="from-envelope")
            status, job, _ = call(
                base, "POST", "/v1/jobs", body, tenant="from-header"
            )
            assert status == 202
            assert job["tenant"] == "from-header"
            # Envelope wins when there is no header.
            status, job, _ = call(base, "POST", "/v1/jobs", body)
            assert status == 202
            assert job["tenant"] == "from-envelope"
            # Neither: the client address keys the row.
            status, job, _ = call(base, "POST", "/v1/jobs", REQUEST)
            assert status == 202
            assert job["tenant"] == "127.0.0.1"
            # A malformed header degrades to the address, never a 4xx.
            status, job, _ = call(
                base, "POST", "/v1/jobs", REQUEST, tenant="not valid!!"
            )
            assert status == 202
            assert job["tenant"] == "127.0.0.1"
        finally:
            server.close()
            thread.join(timeout=10)

    def test_jobs_listing_filters_by_tenant(self, tmp_path):
        server = make_server(
            port=0, job_db=str(tmp_path / "jobs.sqlite"),
            start_runner=False,
        )
        thread, base = start(server)
        try:
            for tenant in ("a", "a", "b"):
                call(base, "POST", "/v1/jobs", REQUEST, tenant=tenant)
            status, payload, _ = call(base, "GET", "/v1/jobs?tenant=a")
            assert status == 200
            assert len(payload["jobs"]) == 2
            assert all(j["tenant"] == "a" for j in payload["jobs"])
            status, payload, _ = call(base, "GET", "/v1/jobs")
            assert len(payload["jobs"]) == 3
        finally:
            server.close()
            thread.join(timeout=10)


class TestTenantLifecycle:
    def test_end_to_end_with_stats_and_suspension(self, tmp_path):
        server = make_server(port=0, job_db=str(tmp_path / "jobs.sqlite"))
        thread, base = start(server)
        try:
            status, job, _ = call(
                base, "POST", "/v1/jobs", REQUEST, tenant="acme"
            )
            assert status == 202
            done = wait_terminal(base, job["id"])
            assert done["status"] == "done"
            assert done["tenant"] == "acme"

            status, stats, _ = call(base, "GET", "/v1/stats")
            assert stats["service"]["tenants"]["acme"]["done"] == 1

            # Operator kill-switch: suspend, watch the shed, resume.
            status, payload, _ = call(
                base, "POST", "/v1/tenants/acme/suspend", b""
            )
            assert status == 200 and payload["suspended"] is True
            status, payload, headers = call(
                base, "POST", "/v1/jobs", REQUEST, tenant="acme"
            )
            assert status == 429
            assert payload["error"]["code"] == "tenant-suspended"
            assert int(headers["Retry-After"]) >= 1
            # Other tenants are untouched.
            status, _, _ = call(
                base, "POST", "/v1/jobs", REQUEST, tenant="other"
            )
            assert status == 202

            status, stats, _ = call(base, "GET", "/v1/stats")
            assert stats["service"]["tenants"]["acme"]["shed"] == 1
            assert stats["service"]["tenants"]["acme"]["suspended"] is True

            status, payload, _ = call(
                base, "POST", "/v1/tenants/acme/resume", b""
            )
            assert status == 200 and payload["suspended"] is False
            status, _, _ = call(
                base, "POST", "/v1/jobs", REQUEST, tenant="acme"
            )
            assert status == 202
        finally:
            server.close()
            thread.join(timeout=10)

    def test_breaker_sheds_a_tenant_whose_jobs_keep_failing(self, tmp_path):
        from repro.service.admission import BREAKER_PROBE_TTL_S

        server = make_server(port=0, job_db=str(tmp_path / "jobs.sqlite"))
        thread, base = start(server)
        try:
            bad = {"version": 1, "kind": "analyze_request",
                   "benchmark": "NoSuchBenchmark"}
            ids = []
            for _ in range(5):
                status, job, _ = call(
                    base, "POST", "/v1/jobs", bad, tenant="sad"
                )
                assert status == 202
                ids.append(job["id"])
            for job_id in ids:
                assert wait_terminal(base, job_id)["status"] == "failed"
            # Let the breaker's cached store probe expire, then the
            # next submission judges the window: 5/5 recent failures.
            time.sleep(BREAKER_PROBE_TTL_S + 0.1)
            status, payload, headers = call(
                base, "POST", "/v1/jobs", bad, tenant="sad"
            )
            assert status == 429
            assert payload["error"]["code"] == "tenant-suspended"
            assert int(headers["Retry-After"]) >= 1
            status, stats, _ = call(base, "GET", "/v1/stats")
            tenants = stats["service"]["tenants"]
            assert tenants["sad"]["breaker_trips"] == 1
            # A healthy tenant sails through while sad is shedding.
            status, _, _ = call(
                base, "POST", "/v1/jobs", REQUEST, tenant="fine"
            )
            assert status == 202
        finally:
            server.close()
            thread.join(timeout=10)
