"""Live repair (:mod:`repro.live`): compilation, interception,
validation, overhead, and the protect surface end to end."""

import json
import random
import threading

import pytest

from repro.api import (
    InvalidRequestError,
    LiveProtectRequest,
    LiveProtectResult,
    Workspace,
    decode_request,
)
from repro.corpus import BY_NAME
from repro.errors import ReproError
from repro.live import (
    LiveInterceptor,
    LiveOpRewriter,
    build_rewriter,
    compile_plan,
    explore_anomalies,
    measure_overhead,
    validate_benchmark,
    validate_corpus,
)
from repro.refactor.migrate import migrate_database
from repro.repair import repair
from repro.semantics import run_serial
from repro.store import PerfConfig


def _compiled(name):
    bench = BY_NAME[name]
    program = bench.program()
    report = repair(program)
    return bench, program, report, compile_plan(program, report.plan)


class TestCompile:
    def test_every_original_db_command_gets_a_rule(self):
        from repro.lang import ast

        _, program, _, ruleset = _compiled("Courseware")
        labels = {
            (txn.name, cmd.label)
            for txn in program.transactions
            for cmd in ast.iter_commands(txn.body)
            if isinstance(cmd, (ast.Select, ast.Update, ast.Insert))
        }
        assert set(ruleset.rules) == labels

    def test_postprocess_is_the_only_unsupported_step(self):
        _, _, _, ruleset = _compiled("Courseware")
        assert [u.step["step"] for u in ruleset.unsupported] == ["postprocess"]
        assert "no sound runtime analogue" in ruleset.unsupported[0].reason

    def test_compile_is_deterministic(self):
        _, _, _, a = _compiled("SmallBank")
        _, _, _, b = _compiled("SmallBank")
        assert a.summary() == b.summary()
        assert [u.to_json() for u in a.unsupported] == [
            u.to_json() for u in b.unsupported
        ]

    def test_serving_labels_exist_in_live_program(self):
        _, _, _, ruleset = _compiled("SmallBank")
        for (txn, _), rule in ruleset.rules.items():
            for live_label in rule.serving:
                assert (txn, live_label) in ruleset.live_commands

    def test_identity_rules_are_not_counted_as_rewritten(self):
        _, _, _, ruleset = _compiled("Courseware")
        identity = sum(1 for r in ruleset.rules.values() if r.identity)
        assert ruleset.rewritten_rule_count() == len(ruleset.rules) - identity
        assert 0 < ruleset.rewritten_rule_count() < len(ruleset.rules)


class TestInterceptor:
    def _serial_pair(self, name, scale=2, seed=5):
        from repro.live.validate import corpus_calls

        bench, program, report, ruleset = _compiled(name)
        db = bench.database(scale=scale)
        live_db = migrate_database(db, ruleset.live_program, ruleset.rewrites)
        static_db = migrate_database(
            db, report.repaired_program, report.rewrites
        )
        calls = corpus_calls(bench, random.Random(seed), scale)
        static = run_serial(report.repaired_program, static_db, calls)
        live = run_serial(
            program, live_db, calls, executor=LiveInterceptor(ruleset)
        )
        return ruleset, static, live

    @pytest.mark.parametrize("name", ["Courseware", "SmallBank", "SIBench"])
    def test_serial_results_match_static_repair(self, name):
        _, static, live = self._serial_pair(name)
        assert static.results == live.results

    def test_counters_account_for_every_issuance(self):
        ruleset, _, _ = self._serial_pair("Courseware")
        counters = ruleset.counters()
        assert sum(c["hits"] for c in counters.values()) > 0
        for rule in ruleset.rules.values():
            if rule.hits:
                # Every issuance either executed live commands or was
                # skipped because a merge partner already ran them.
                assert rule.rewrites + rule.skips > 0

    def test_reset_counters(self):
        ruleset, _, _ = self._serial_pair("Courseware")
        ruleset.reset_counters()
        assert all(
            c == {"hits": 0, "rewrites": 0, "skips": 0}
            for c in ruleset.counters().values()
        )


class TestValidate:
    def test_courseware_passes_the_differential(self):
        verdict = validate_benchmark(BY_NAME["Courseware"], samples=20)
        assert verdict.serial_match
        assert verdict.verdict_match
        assert verdict.passed
        assert verdict.original.anomalies > 0  # the bug it protects from
        assert verdict.live.anomalies == 0

    def test_external_plan_matches_own_repair(self):
        bench = BY_NAME["SIBench"]
        plan = repair(bench.program()).plan
        own = validate_benchmark(bench, samples=10)
        ext = validate_benchmark(bench, plan=plan, samples=10)
        assert own.rules == ext.rules
        assert own.passed and ext.passed

    def test_counters_keyed_like_summary_rows(self):
        verdict = validate_benchmark(BY_NAME["SIBench"], samples=5)
        _, _, _, ruleset = _compiled("SIBench")
        keys = {f"{r['txn']}/{r['label']}" for r in ruleset.summary()}
        assert set(verdict.counters) == keys

    def test_exploration_is_deterministic(self):
        bench = BY_NAME["SIBench"]
        program = bench.program()
        db = bench.database(scale=2)
        from repro.live.validate import corpus_calls

        calls = corpus_calls(bench, random.Random(3), 2)
        a = explore_anomalies(program, db, calls, samples=15, seed=4)
        b = explore_anomalies(program, db, calls, samples=15, seed=4)
        assert a == b

    def test_validate_corpus_rejects_unknown_names(self):
        with pytest.raises(ReproError, match="unknown benchmark"):
            validate_corpus(names=["Nope"], samples=1)

    def test_verdict_json_shape(self):
        verdict = validate_benchmark(BY_NAME["SIBench"], samples=5)
        doc = verdict.to_json()
        assert doc["benchmark"] == "SIBench"
        for side in ("original", "static", "target", "live"):
            assert set(doc[side]) == {"anomalies", "errors", "samples"}


class TestOverhead:
    CFG = PerfConfig(duration_ms=1000, warmup_ms=100, seed=7)

    def test_measurement_is_finite_and_live(self):
        m = measure_overhead(
            BY_NAME["SIBench"], config=self.CFG, clients=4, scale=2
        )
        assert m.live_throughput > 0
        assert m.predicted_throughput > 0
        assert m.overhead_ratio == pytest.approx(
            m.predicted_throughput / m.live_throughput
        )

    def test_measurement_is_deterministic(self):
        a = measure_overhead(
            BY_NAME["SIBench"], config=self.CFG, clients=4, scale=2
        )
        b = measure_overhead(
            BY_NAME["SIBench"], config=self.CFG, clients=4, scale=2
        )
        assert a.to_json() == b.to_json()

    def test_rewriter_falls_back_on_unknown_txn(self):
        from repro.store.profile import OpProfile

        rewriter = LiveOpRewriter({}, {})
        profile = OpProfile(
            txn="ghost", ops=(("r", "T"),), serializable=False
        )
        ops, extra = rewriter.rewrite(profile)
        assert tuple(ops) == (("r", "T"),)
        assert extra == 0.0

    def test_build_rewriter_covers_every_mix_txn(self):
        bench = BY_NAME["SIBench"]
        _, _, _, ruleset = _compiled("SIBench")
        rewriter = build_rewriter(bench, ruleset, scale=2, seed=3)
        for name, _, _ in bench.mix:
            assert name in rewriter.live_ops


class TestWire:
    def test_request_round_trip(self):
        request = LiveProtectRequest(
            benchmark="Courseware", samples=30, measure=True, tenant="t1"
        )
        assert LiveProtectRequest.from_json(request.to_json()) == request

    def test_decode_request_routes_the_kind(self):
        doc = LiveProtectRequest(benchmark="SIBench").to_json()
        decoded = decode_request(doc)
        assert isinstance(decoded, LiveProtectRequest)

    def test_nonpositive_knobs_rejected(self):
        base = LiveProtectRequest(benchmark="X").to_json()
        for field in ("samples", "scale", "clients"):
            bad = dict(base)
            bad[field] = 0
            with pytest.raises(InvalidRequestError, match=field):
                LiveProtectRequest.from_json(bad)

    def test_missing_benchmark_rejected(self):
        doc = LiveProtectRequest(benchmark="X").to_json()
        del doc["benchmark"]
        with pytest.raises(InvalidRequestError):
            LiveProtectRequest.from_json(doc)


@pytest.fixture(scope="module")
def protect_result():
    with Workspace(strategy="serial") as ws:
        yield ws.protect(
            LiveProtectRequest(
                benchmark="Courseware", samples=20, measure=True, clients=4
            )
        )


class TestWorkspaceProtect:
    def test_result_passes(self, protect_result):
        assert protect_result.passed
        assert protect_result.serial_match and protect_result.verdict_match
        assert protect_result.benchmark == "Courseware"
        assert protect_result.rules > 0
        assert protect_result.unsupported == 1

    def test_anomaly_sides_present(self, protect_result):
        assert set(protect_result.anomalies) == {
            "original",
            "static",
            "target",
            "live",
        }
        assert protect_result.anomalies["original"]["anomalies"] > 0

    def test_rule_summary_carries_serial_counters(self, protect_result):
        rows = protect_result.rule_summary
        assert rows
        assert sum(r["hits"] for r in rows) > 0
        for row in rows:
            assert {"txn", "label", "op", "table", "serving"} <= set(row)

    def test_overhead_present_when_measured(self, protect_result):
        assert protect_result.overhead is not None
        assert protect_result.overhead["overhead_ratio"] > 0

    def test_result_round_trips(self, protect_result):
        doc = protect_result.to_json()
        assert LiveProtectResult.from_json(doc) == protect_result

    def test_result_matches_committed_schema(self, protect_result):
        import os

        from repro.api.schema import iter_violations, schema_filename

        schema_dir = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "schemas",
        )
        with open(
            os.path.join(schema_dir, schema_filename("live_protect_result"))
        ) as fh:
            schema = json.load(fh)
        assert not list(iter_violations(protect_result.to_json(), schema))

    def test_protect_program_accepts_external_plan(self):
        bench = BY_NAME["SIBench"]
        plan = repair(bench.program()).plan
        with Workspace(strategy="serial") as ws:
            ruleset, verdict, overhead = ws.protect_program(
                "SIBench", plan, samples=10
            )
        assert verdict.passed
        assert overhead is None
        assert len(ruleset.rules) == verdict.rules


class TestServiceProtect:
    @pytest.fixture(scope="class")
    def base(self):
        from repro.service import make_server

        srv = make_server(port=0)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        host, port = srv.server_address[:2]
        yield f"http://{host}:{port}"
        srv.close()
        thread.join(timeout=5)

    def _call(self, base, method, path, body=None):
        import urllib.error
        import urllib.request

        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            base + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=600) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def test_sync_protect_round_trip(self, base):
        status, payload = self._call(
            base,
            "POST",
            "/v1/protect",
            LiveProtectRequest(benchmark="SIBench", samples=10).to_json(),
        )
        assert status == 200, payload
        assert payload["kind"] == "live_protect_result"
        result = LiveProtectResult.from_json(payload)
        assert result.passed

    def test_async_protect_job(self, base):
        import time

        status, job = self._call(
            base,
            "POST",
            "/v1/jobs",
            LiveProtectRequest(benchmark="SIBench", samples=10).to_json(),
        )
        assert status == 202, job
        assert job["kind"] == "protect"
        deadline = time.time() + 600
        while time.time() < deadline:
            status, job = self._call(base, "GET", f"/v1/jobs/{job['id']}")
            assert status == 200
            if job["status"] in ("done", "failed"):
                break
            time.sleep(0.05)
        assert job["status"] == "done", job.get("error")
        assert job["result"]["kind"] == "live_protect_result"
        assert job["result"]["passed"] is True

    def test_unknown_benchmark_maps_to_api_error(self, base):
        status, payload = self._call(
            base,
            "POST",
            "/v1/protect",
            LiveProtectRequest(benchmark="Nope").to_json(),
        )
        assert status == 400
        assert payload["error"]["code"] == "unknown-benchmark"


class TestChaosRegistry:
    def test_registry_names(self):
        from repro.service import SCENARIOS, scenario_help

        assert set(SCENARIOS) == {"faults", "tenant-isolation"}
        for name in SCENARIOS:
            assert name in scenario_help()

    def test_unknown_scenario_lists_the_valid_ones(self):
        from repro.service import run_scenario

        with pytest.raises(ReproError) as err:
            run_scenario("bogus")
        assert "faults" in str(err.value)
        assert "tenant-isolation" in str(err.value)

    def test_cli_help_enumerates_scenarios(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["chaos", "--help"])
        out = capsys.readouterr().out
        assert "'faults'" in out
        assert "'tenant-isolation'" in out

    def test_cli_rejects_unknown_scenario(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["chaos", "--scenario", "bogus"])
        err = capsys.readouterr().err
        assert "invalid choice" in err


class TestCliProtect:
    def test_protect_writes_a_report(self, tmp_path, capsys):
        from repro.cli import main

        report = tmp_path / "protect.json"
        code = main(
            [
                "protect",
                "--benchmark",
                "SIBench",
                "--samples",
                "10",
                "--report",
                str(report),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "live protection: PASS" in out
        doc = json.loads(report.read_text())
        assert doc["kind"] == "live_protect_result"
        assert doc["passed"] is True

    def test_protect_plan_in(self, tmp_path, capsys):
        from repro.cli import main

        plan_file = tmp_path / "plan.json"
        assert (
            main(
                [
                    "repair",
                    "--benchmark",
                    "SIBench",
                    "--plan-out",
                    str(plan_file),
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            [
                "protect",
                "--benchmark",
                "SIBench",
                "--plan-in",
                str(plan_file),
                "--samples",
                "10",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert f"plan from {plan_file}" in out
