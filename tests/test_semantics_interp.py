"""Interpreter tests: expression evaluation and command execution."""

import pytest

from repro.errors import SemanticsError
from repro.lang import parse_program
from repro.semantics import Database, TxnCall, run_serial
from repro.semantics.interp import Instance


def run(program, db, *calls):
    return run_serial(program, db, [TxnCall(n, a) for n, a in calls])


class TestSerialExecution:
    def test_deposit_updates_balance(self, account_program, account_db):
        h = run(account_program, account_db, ("deposit", (1, 25)))
        assert h.state.materialize()["ACCOUNT"][(1,)]["bal"] == 125

    def test_read_returns_value(self, account_program, account_db):
        h = run(account_program, account_db, ("read_bal", (2,)))
        assert h.results[0] == 50

    def test_sequence_of_deposits(self, account_program, account_db):
        h = run(
            account_program, account_db,
            ("deposit", (1, 10)), ("deposit", (1, 20)), ("read_bal", (1,)),
        )
        assert h.results[2] == 130

    def test_update_only_touches_matching_records(self, account_program, account_db):
        h = run(account_program, account_db, ("deposit", (1, 10)))
        final = h.state.materialize()
        assert final["ACCOUNT"][(2,)]["bal"] == 50

    def test_initial_db_not_mutated(self, account_program, account_db):
        run(account_program, account_db, ("deposit", (1, 10)))
        assert account_db.tables["ACCOUNT"][(1,)]["bal"] == 100

    def test_wrong_arity_raises(self, account_program, account_db):
        with pytest.raises(SemanticsError):
            run(account_program, account_db, ("deposit", (1,)))


class TestInserts:
    SRC = """
    schema LOG { key l_id; field l_val; }
    txn add(v) { insert into LOG values (l_id = uuid(), l_val = v); }
    txn total() { x := select l_val from LOG where true; return sum(x.l_val); }
    """

    def test_insert_creates_record(self):
        p = parse_program(self.SRC)
        db = Database(p)
        h = run(p, db, ("add", (5,)), ("add", (7,)), ("total", ()))
        assert h.results[2] == 12

    def test_uuid_keys_are_fresh(self):
        p = parse_program(self.SRC)
        db = Database(p)
        h = run(p, db, ("add", (1,)), ("add", (1,)))
        assert len(h.state.materialize()["LOG"]) == 2


class TestControlFlow:
    SRC = """
    schema T { key id; field v; }
    txn cond_set(k, n) {
      x := select v from T where id = k;
      if (x.v < n) { update T set v = n where id = k; }
    }
    txn loop_add(k, times) {
      iterate (times) {
        y := select v from T where id = k;
        update T set v = y.v + iter where id = k;
      }
    }
    """

    def _setup(self):
        p = parse_program(self.SRC)
        db = Database(p)
        db.insert("T", id=1, v=10)
        return p, db

    def test_if_taken(self):
        p, db = self._setup()
        h = run(p, db, ("cond_set", (1, 20)))
        assert h.state.materialize()["T"][(1,)]["v"] == 20

    def test_if_not_taken(self):
        p, db = self._setup()
        h = run(p, db, ("cond_set", (1, 5)))
        assert h.state.materialize()["T"][(1,)]["v"] == 10

    def test_iterate_runs_n_times(self):
        p, db = self._setup()
        h = run(p, db, ("loop_add", (1, 3)))
        # v = 10 + 1 + 2 + 3
        assert h.state.materialize()["T"][(1,)]["v"] == 16

    def test_iterate_zero_times(self):
        p, db = self._setup()
        h = run(p, db, ("loop_add", (1, 0)))
        assert h.state.materialize()["T"][(1,)]["v"] == 10

    def test_negative_iterate_raises(self):
        p, db = self._setup()
        with pytest.raises(SemanticsError):
            run(p, db, ("loop_add", (1, -1)))


class TestAggregates:
    SRC = """
    schema T { key id; field grp; field v; }
    txn agg_of(g) {
      x := select v from T where grp = g;
      return sum(x.v);
    }
    txn count_of(g) {
      x := select v from T where grp = g;
      return count(x.v);
    }
    txn max_of(g) {
      x := select v from T where grp = g;
      return max(x.v);
    }
    """

    def _setup(self):
        p = parse_program(self.SRC)
        db = Database(p)
        for i, (g, v) in enumerate([(1, 5), (1, 7), (2, 100)]):
            db.insert("T", id=i, grp=g, v=v)
        return p, db

    def test_sum(self):
        p, db = self._setup()
        assert run(p, db, ("agg_of", (1,))).results[0] == 12

    def test_sum_empty_is_zero(self):
        p, db = self._setup()
        assert run(p, db, ("agg_of", (99,))).results[0] == 0

    def test_count(self):
        p, db = self._setup()
        assert run(p, db, ("count_of", (1,))).results[0] == 2

    def test_max(self):
        p, db = self._setup()
        assert run(p, db, ("max_of", (2,))).results[0] == 100

    def test_max_empty_raises(self):
        p, db = self._setup()
        with pytest.raises(SemanticsError):
            run(p, db, ("max_of", (99,)))


class TestUpdateWhereClauses:
    SRC = """
    schema T { key id; field grp; field v; }
    txn set_group(g, n) { update T set v = n where grp = g; }
    txn set_small(g, cap, n) {
      update T set v = n where grp = g and v < cap;
    }
    txn set_all(n) { update T set v = n where true; }
    txn set_none(n) { update T set v = n where id < 0; }
    txn raise_to_max(g) {
      x := select v from T where grp = g;
      update T set v = max(x.v) where grp = g;
    }
    """

    def _setup(self):
        p = parse_program(self.SRC)
        db = Database(p)
        for i, (g, v) in enumerate([(1, 5), (1, 7), (2, 100)]):
            db.insert("T", id=i, grp=g, v=v)
        return p, db

    def _values(self, h):
        return {k[0]: r["v"] for k, r in h.state.materialize()["T"].items()}

    def test_where_matches_only_its_group(self):
        p, db = self._setup()
        h = run(p, db, ("set_group", (1, 10)))
        assert self._values(h) == {0: 10, 1: 10, 2: 100}

    def test_compound_where_filters_on_both_conjuncts(self):
        p, db = self._setup()
        h = run(p, db, ("set_small", (1, 6, 10)))
        # Only (grp=1, v=5) is below the cap; (grp=1, v=7) is not.
        assert self._values(h) == {0: 10, 1: 7, 2: 100}

    def test_where_true_touches_every_record(self):
        p, db = self._setup()
        h = run(p, db, ("set_all", (42,)))
        assert self._values(h) == {0: 42, 1: 42, 2: 42}

    def test_unmatched_where_touches_nothing(self):
        p, db = self._setup()
        h = run(p, db, ("set_none", (42,)))
        assert self._values(h) == {0: 5, 1: 7, 2: 100}
        assert all(not e.is_write for e in h.steps[0].events)

    def test_aggregate_in_update_expression(self):
        p, db = self._setup()
        h = run(p, db, ("raise_to_max", (1,)))
        assert self._values(h) == {0: 7, 1: 7, 2: 100}


class TestInsertExpressions:
    SRC = """
    schema LOG { key l_id; field l_val; field l_rank; }
    txn add_next(v) {
      x := select l_val from LOG where true;
      insert into LOG values (
        l_id = uuid(), l_val = v, l_rank = count(x.l_val) + 1
      );
    }
    txn add_sum() {
      x := select l_val from LOG where true;
      insert into LOG values (
        l_id = uuid(), l_val = sum(x.l_val), l_rank = 0
      );
    }
    """

    def _setup(self):
        p = parse_program(self.SRC)
        return p, Database(p)

    def test_aggregate_in_insert_values(self):
        p, db = self._setup()
        h = run(p, db, ("add_next", (5,)), ("add_next", (9,)))
        ranks = sorted(
            r["l_rank"] for r in h.state.materialize()["LOG"].values()
        )
        assert ranks == [1, 2]

    def test_insert_derived_from_prior_rows(self):
        p, db = self._setup()
        h = run(p, db, ("add_next", (5,)), ("add_next", (9,)), ("add_sum", ()))
        vals = sorted(
            r["l_val"] for r in h.state.materialize()["LOG"].values()
        )
        assert vals == [5, 9, 14]

    def test_insert_writes_alive_flag_last(self):
        p, db = self._setup()
        h = run(p, db, ("add_next", (3,)))
        writes = [e for e in h.steps[1].events if e.is_write]
        assert writes[-1].field == "alive"
        assert writes[-1].value is True


class TestEventGeneration:
    def test_select_generates_read_events(self, account_program, account_db):
        h = run(account_program, account_db, ("read_bal", (1,)))
        events = h.steps[0].events
        assert all(e.is_read for e in events)
        assert any(e.field == "bal" for e in events)

    def test_update_generates_write_events(self, account_program, account_db):
        h = run(account_program, account_db, ("rename", (1, "eve")))
        writes = [e for e in h.steps[0].events if e.is_write]
        assert len(writes) == 1
        assert writes[0].field == "owner"
        assert writes[0].value == "eve"

    def test_command_events_share_timestamp(self, account_program, account_db):
        h = run(account_program, account_db, ("deposit", (1, 5)))
        for step in h.steps:
            assert len({e.ts for e in step.events}) <= 1

    def test_timestamps_strictly_increase(self, account_program, account_db):
        h = run(account_program, account_db, ("deposit", (1, 5)), ("deposit", (2, 5)))
        ts = [s.ts for s in h.steps]
        assert ts == sorted(ts)
        assert len(set(ts)) == len(ts)


class TestDivisionAndComparison:
    def test_division_by_zero_raises(self, account_program, account_db):
        from repro.lang import ast

        instance = Instance(0, account_program, TxnCall("read_bal", (1,)))
        with pytest.raises(SemanticsError):
            instance.eval_expr(ast.BinOp("/", ast.Const(1), ast.Const(0)))

    def test_comparison_with_none_is_false(self, account_program):
        from repro.lang import ast

        instance = Instance(0, account_program, TxnCall("read_bal", (1,)))
        expr = ast.Cmp("<", ast.Const(1), ast.Const(2))
        assert instance.eval_expr(expr) is True
