"""Analysis pipeline tests: planner topology, memo cache semantics, and
strategy equivalence against the serial seed oracle."""

import pytest

from repro.analysis import (
    AnomalyOracle,
    CC,
    EC,
    QueryCache,
    QueryPlanner,
    RR,
    summarize_program,
)
from repro.analysis.pipeline import (
    IncrementalStrategy,
    ParallelIncrementalStrategy,
    ParallelStrategy,
    SerialStrategy,
    fingerprint_command,
    fingerprint_summary,
    resolve_strategy,
)
from repro.lang import parse_program


def canonical(pairs):
    """Full structural identity of an AccessPair list."""
    return [
        (
            p.txn,
            p.c1,
            p.c2,
            tuple(sorted(p.fields1)),
            tuple(sorted(p.fields2)),
            p.interferers,
            p.patterns,
        )
        for p in pairs
    ]


class TestPlanner:
    def test_one_query_per_pair_and_interferer(self, courseware):
        summaries = summarize_program(courseware)
        plan = QueryPlanner().plan(summaries, EC, True)
        n_txns = len(summaries)
        expected_pairs = sum(
            len(s.ordered_pairs()) for s in summaries.values()
        )
        assert len(plan.batches) == expected_pairs
        assert len(plan.queries()) == expected_pairs * n_txns

    def test_generations_are_topological(self, courseware):
        summaries = summarize_program(courseware)
        plan = QueryPlanner().plan(summaries, EC, True)
        generations = plan.generations()
        # Queries have no dependencies; merges depend only on queries.
        assert len(generations) == 2
        assert all(n.kind == "query" for n in generations[0])
        assert all(n.kind == "merge" for n in generations[1])
        assert len(generations[1]) == len(plan.batches)

    def test_cache_keys_ignore_transaction_names(self):
        src = """
        schema T {{ key id; field v; }}
        txn {name}(k) {{
          x := select v from T where id = k;
          update T set v = x.v + 1 where id = k;
        }}
        """
        s1 = summarize_program(parse_program(src.format(name="incr")))
        s2 = summarize_program(parse_program(src.format(name="bump")))
        assert fingerprint_summary(s1["incr"]) == fingerprint_summary(s2["bump"])

    def test_fingerprints_see_structural_change(self):
        base = """
        schema T { key id; field v; field w; }
        txn t(k) { update T set v = 1 where id = k; }
        """
        changed = base.replace("set v = 1", "set w = 1")
        c1 = summarize_program(parse_program(base))["t"].commands[0]
        c2 = summarize_program(parse_program(changed))["t"].commands[0]
        assert fingerprint_command(c1) != fingerprint_command(c2)


class TestQueryCache:
    def test_identical_requery_hits(self, courseware):
        cache = QueryCache()
        oracle = AnomalyOracle(EC, strategy="cached", cache=cache)
        first = oracle.analyze(courseware)
        second = oracle.analyze(courseware)
        assert first.cache_hits == 0
        assert second.cache_misses == 0
        assert second.cache_hits == first.cache_misses
        assert canonical(first.pairs) == canonical(second.pairs)

    def test_touched_transactions_miss_untouched_hit(self):
        """A merge-style rewrite of one transaction must invalidate only
        the queries that mention it."""
        base = """
        schema A { key id; field x; field y; }
        txn writer(k) {
          update A set x = 1 where id = k;
          update A set y = 2 where id = k;
        }
        txn reader(k) {
          p := select x from A where id = k;
          q := select y from A where id = k;
          return p.x + q.y;
        }
        """
        # The merged variant of `writer` (one combined update): its
        # summaries fingerprint differently, reader's stay identical.
        merged = """
        schema A { key id; field x; field y; }
        txn writer(k) {
          update A set x = 1, y = 2 where id = k;
        }
        txn reader(k) {
          p := select x from A where id = k;
          q := select y from A where id = k;
          return p.x + q.y;
        }
        """
        cache = QueryCache()
        oracle = AnomalyOracle(EC, strategy="cached", cache=cache)
        oracle.analyze(parse_program(base))
        report = oracle.analyze(parse_program(merged))
        # reader-vs-reader queries are untouched by the rewrite and hit;
        # anything involving the rewritten writer misses.
        assert report.cache_hits > 0
        assert report.cache_misses > 0
        summaries = summarize_program(parse_program(merged))
        reader_pairs = len(summaries["reader"].ordered_pairs())
        assert report.cache_hits == reader_pairs  # (reader, c1, c2) vs reader

    def test_explicit_invalidation(self, courseware):
        cache = QueryCache()
        oracle = AnomalyOracle(EC, strategy="cached", cache=cache)
        oracle.analyze(courseware)
        assert len(cache) > 0
        dropped = cache.invalidate(txns={"regSt"})
        assert dropped > 0
        report = oracle.analyze(courseware)
        assert report.cache_misses == dropped

    def test_invalidate_by_table(self, courseware):
        cache = QueryCache()
        AnomalyOracle(EC, strategy="cached", cache=cache).analyze(courseware)
        populated = len(cache)
        assert populated > 0
        # Every courseware query touches STUDENT, EMAIL, or COURSE.
        dropped = cache.invalidate(tables={"STUDENT", "EMAIL", "COURSE"})
        assert dropped == populated
        assert len(cache) == 0
        assert cache.invalidate(tables={"STUDENT"}) == 0  # already empty

    def test_ec_unsat_reused_at_stronger_levels(self):
        src = """
        schema T { key id; field v; }
        txn r1(k) { x := select v from T where id = k; return x.v; }
        txn r2(k) {
          x := select v from T where id = k;
          y := select v from T where id = k;
          return x.v + y.v;
        }
        """
        program = parse_program(src)
        cache = QueryCache()
        ec = AnomalyOracle(EC, strategy="cached", cache=cache).analyze(program)
        assert ec.pairs == []  # read-only program: every query is UNSAT
        rr = AnomalyOracle(RR, strategy="cached", cache=cache).analyze(program)
        assert rr.cache_misses == 0
        assert rr.pairs == []


class TestStrategyEquivalence:
    @pytest.mark.parametrize("level", [EC, CC, RR])
    def test_cached_matches_serial(self, courseware, level):
        serial = AnomalyOracle(level).analyze(courseware)
        cached = AnomalyOracle(level, strategy="cached").analyze(courseware)
        assert canonical(serial.pairs) == canonical(cached.pairs)
        assert serial.pairs_checked == cached.pairs_checked

    def test_parallel_matches_serial(self, courseware):
        serial = AnomalyOracle(EC).analyze(courseware)
        oracle = AnomalyOracle(
            EC, strategy=ParallelStrategy(max_workers=2)
        )
        try:
            parallel = oracle.analyze(courseware)
        finally:
            oracle.close()
        assert canonical(serial.pairs) == canonical(parallel.pairs)

    def test_prefilter_knob_is_result_neutral(self, courseware):
        with_screen = AnomalyOracle(
            EC, use_prefilter=True, strategy="cached"
        ).analyze(courseware)
        without = AnomalyOracle(
            EC, use_prefilter=False, strategy="cached"
        ).analyze(courseware)
        assert canonical(with_screen.pairs) == canonical(without.pairs)

    def test_report_carries_execution_metadata(self, courseware):
        report = AnomalyOracle(EC, strategy="cached").analyze(courseware)
        assert report.strategy == "cached"
        assert report.cache_misses > 0
        assert report.solver_stats.get("propagations", 0) > 0
        assert report.queries_per_second >= 0


class TestStrategyResolution:
    def test_names_resolve(self):
        assert isinstance(resolve_strategy("cached"), SerialStrategy)
        assert isinstance(resolve_strategy("incremental"), IncrementalStrategy)
        assert isinstance(resolve_strategy("parallel"), ParallelStrategy)
        auto = resolve_strategy("auto")
        # Multi-core hosts get the sharded warm-session pool;
        # single-core hosts use in-process warm sessions.
        assert isinstance(
            auto, (IncrementalStrategy, ParallelIncrementalStrategy)
        )
        auto.close()

    def test_instance_passthrough(self):
        runner = SerialStrategy()
        assert resolve_strategy(runner) is runner

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            resolve_strategy("warp-speed")

    def test_single_worker_parallel_degrades_in_process(self, courseware):
        strategy = ParallelStrategy(max_workers=1)
        oracle = AnomalyOracle(EC, strategy=strategy)
        report = oracle.analyze(courseware)
        assert strategy._executor is None  # never spun up a pool
        assert len(report.pairs) == 5


class TestRepairEngineIntegration:
    def test_repair_reuses_cache_across_reanalyses(self, courseware):
        from repro.repair.engine import RepairEngine

        cache = QueryCache()
        serial = RepairEngine().repair(courseware)
        cached = RepairEngine(strategy="cached", cache=cache).repair(courseware)
        assert canonical(serial.initial_pairs) == canonical(cached.initial_pairs)
        assert canonical(serial.residual_pairs) == canonical(
            cached.residual_pairs
        )
        assert [o.action for o in serial.outcomes] == [
            o.action for o in cached.outcomes
        ]
        assert cache.hits > 0  # the fixpoint re-analyses hit the memo
