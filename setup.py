"""Legacy installer shim.

`pip install -e .` uses pyproject.toml; this file exists for environments
whose setuptools predates PEP 660 editable installs (fall back to
`python setup.py develop`).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
